//! The network builder and cleartext reference inference.
//!
//! Mirrors the paper's Listing 1 in Rust: layers are added fluently, skip
//! connections with [`Network::add`], and the same weights drive both the
//! cleartext reference forward pass (the "PyTorch output" every FHE run is
//! validated against, §7) and the FHE compilation.

use crate::layer::{BnParams, Layer};
use orion_tensor::{avg_pool2d, batch_norm2d, conv2d, linear, Conv2dParams, Tensor};
use rand::Rng;

/// Node index within a network.
pub type NodeId = usize;

/// One node: a layer plus its input wiring.
#[derive(Clone, Debug)]
pub struct ModuleNode {
    /// Display name.
    pub name: String,
    /// The layer.
    pub layer: Layer,
    /// Input nodes (one, or two for `Add`).
    pub inputs: Vec<NodeId>,
    /// Output shape `(c, h, w)`; linear/flatten outputs use `(n, 1, 1)`.
    pub shape: (usize, usize, usize),
}

/// A neural network as a DAG of layers.
#[derive(Clone, Debug)]
pub struct Network {
    /// All nodes; index 0 is the input.
    pub nodes: Vec<ModuleNode>,
    output: Option<NodeId>,
}

impl Network {
    /// Starts a network with input shape `(c, h, w)`.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self {
            nodes: vec![ModuleNode {
                name: "input".into(),
                layer: Layer::Input,
                inputs: vec![],
                shape: (c, h, w),
            }],
            output: None,
        }
    }

    /// The input node id.
    pub fn input(&self) -> NodeId {
        0
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        layer: Layer,
        inputs: Vec<NodeId>,
        shape: (usize, usize, usize),
    ) -> NodeId {
        assert!(self.output.is_none(), "network already sealed");
        self.nodes.push(ModuleNode {
            name: name.into(),
            layer,
            inputs,
            shape,
        });
        self.nodes.len() - 1
    }

    /// Shape of a node.
    pub fn shape(&self, id: NodeId) -> (usize, usize, usize) {
        self.nodes[id].shape
    }

    /// Adds a convolution with explicit weights.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_with(
        &mut self,
        name: &str,
        prev: NodeId,
        weight: Tensor,
        bias: Vec<f64>,
        stride: usize,
        padding: usize,
        dilation: usize,
        groups: usize,
    ) -> NodeId {
        let (c, h, w) = self.shape(prev);
        let co = weight.shape()[0];
        assert_eq!(
            weight.shape()[1] * groups,
            c,
            "conv input channels mismatch at {name}"
        );
        let p = Conv2dParams {
            stride,
            padding,
            dilation,
            groups,
        };
        let ho = p.out_size(h, weight.shape()[2]);
        let wo = p.out_size(w, weight.shape()[3]);
        self.push(
            name,
            Layer::Conv2d {
                weight,
                bias,
                stride,
                padding,
                dilation,
                groups,
            },
            vec![prev],
            (co, ho, wo),
        )
    }

    /// Adds a convolution with Kaiming-initialized weights.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d<R: Rng>(
        &mut self,
        name: &str,
        prev: NodeId,
        co: usize,
        k: usize,
        stride: usize,
        padding: usize,
        groups: usize,
        rng: &mut R,
    ) -> NodeId {
        let (c, _, _) = self.shape(prev);
        let fan_in = (c / groups) * k * k;
        let weight = Tensor::kaiming(&[co, c / groups, k, k], fan_in, rng);
        self.conv2d_with(
            name,
            prev,
            weight,
            vec![0.0; co],
            stride,
            padding,
            1,
            groups,
        )
    }

    /// Adds a batch-norm layer (random-identity-ish statistics unless set
    /// explicitly via [`Network::batch_norm2d_with`]).
    pub fn batch_norm2d(&mut self, name: &str, prev: NodeId) -> NodeId {
        let (c, _, _) = self.shape(prev);
        self.batch_norm2d_with(name, prev, BnParams::identity(c))
    }

    /// Adds a batch-norm layer with explicit statistics.
    pub fn batch_norm2d_with(&mut self, name: &str, prev: NodeId, bn: BnParams) -> NodeId {
        let shape = self.shape(prev);
        assert_eq!(bn.gamma.len(), shape.0);
        self.push(name, Layer::BatchNorm2d(bn), vec![prev], shape)
    }

    /// Adds a fully-connected layer with explicit weights.
    pub fn linear_with(
        &mut self,
        name: &str,
        prev: NodeId,
        weight: Tensor,
        bias: Vec<f64>,
    ) -> NodeId {
        let (c, h, w) = self.shape(prev);
        assert_eq!(
            weight.shape()[1],
            c * h * w,
            "linear input size mismatch at {name}"
        );
        let n_out = weight.shape()[0];
        self.push(
            name,
            Layer::Linear { weight, bias },
            vec![prev],
            (n_out, 1, 1),
        )
    }

    /// Adds a fully-connected layer with Kaiming-initialized weights.
    pub fn linear<R: Rng>(
        &mut self,
        name: &str,
        prev: NodeId,
        n_out: usize,
        rng: &mut R,
    ) -> NodeId {
        let (c, h, w) = self.shape(prev);
        let n_in = c * h * w;
        let weight = Tensor::kaiming(&[n_out, n_in], n_in, rng);
        self.linear_with(name, prev, weight, vec![0.0; n_out])
    }

    /// Adds average pooling.
    pub fn avg_pool2d(&mut self, name: &str, prev: NodeId, k: usize, stride: usize) -> NodeId {
        self.avg_pool2d_pad(name, prev, k, stride, 0)
    }

    /// Adds average pooling with zero padding.
    pub fn avg_pool2d_pad(
        &mut self,
        name: &str,
        prev: NodeId,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> NodeId {
        let (c, h, w) = self.shape(prev);
        let ho = (h + 2 * padding - k) / stride + 1;
        let wo = (w + 2 * padding - k) / stride + 1;
        self.push(
            name,
            Layer::AvgPool2d { k, stride, padding },
            vec![prev],
            (c, ho, wo),
        )
    }

    /// Adds global average pooling.
    pub fn global_avg_pool(&mut self, name: &str, prev: NodeId) -> NodeId {
        let (c, _, _) = self.shape(prev);
        self.push(name, Layer::GlobalAvgPool, vec![prev], (c, 1, 1))
    }

    /// Adds a ReLU with the given composite sign degrees.
    pub fn relu(&mut self, name: &str, prev: NodeId, degrees: &[usize]) -> NodeId {
        let shape = self.shape(prev);
        self.push(
            name,
            Layer::ReLU {
                degrees: degrees.to_vec(),
            },
            vec![prev],
            shape,
        )
    }

    /// Adds a SiLU of the given degree.
    pub fn silu(&mut self, name: &str, prev: NodeId, degree: usize) -> NodeId {
        let shape = self.shape(prev);
        self.push(name, Layer::SiLU { degree }, vec![prev], shape)
    }

    /// Adds the `x²` activation.
    pub fn square(&mut self, name: &str, prev: NodeId) -> NodeId {
        let shape = self.shape(prev);
        self.push(name, Layer::Square, vec![prev], shape)
    }

    /// Adds a custom activation (paper: "Orion supports arbitrary
    /// activation functions that can be fit with high-degree polynomials").
    pub fn activation(
        &mut self,
        name: &str,
        prev: NodeId,
        degree: usize,
        f: fn(f64) -> f64,
    ) -> NodeId {
        let shape = self.shape(prev);
        self.push(
            name,
            Layer::Activation {
                name: name.to_string(),
                degree,
                table: f,
            },
            vec![prev],
            shape,
        )
    }

    /// Adds a flatten marker.
    pub fn flatten(&mut self, name: &str, prev: NodeId) -> NodeId {
        let (c, h, w) = self.shape(prev);
        self.push(name, Layer::Flatten, vec![prev], (c * h * w, 1, 1))
    }

    /// Adds a residual join.
    pub fn add(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.shape(a),
            self.shape(b),
            "residual shapes must match at {name}"
        );
        let shape = self.shape(a);
        self.push(name, Layer::Add, vec![a, b], shape)
    }

    /// Seals the network at `prev`.
    pub fn output(&mut self, prev: NodeId) -> NodeId {
        let shape = self.shape(prev);
        let id = self.push("output", Layer::Output, vec![prev], shape);
        self.output = Some(id);
        id
    }

    /// The sealed output node.
    pub fn output_node(&self) -> NodeId {
        self.output.expect("network not sealed with .output()")
    }

    /// Total parameter count (the paper's "Params (M)" column).
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.layer.param_count()).sum()
    }

    /// Approximate multiply-accumulate count (the paper's "FLOPS (M)").
    pub fn flop_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.layer {
                Layer::Conv2d { weight, groups, .. } => {
                    let (co, ho, wo) = n.shape;
                    let _ = co;
                    let per_pos = weight.shape()[1] * weight.shape()[2] * weight.shape()[3];
                    n.shape.0 * ho * wo * per_pos / *groups * *groups
                }
                Layer::Linear { weight, .. } => weight.len(),
                _ => 0,
            })
            .sum()
    }

    /// Reference cleartext forward pass with **exact** activations
    /// (the "PyTorch" output).
    pub fn forward_exact(&self, input: &Tensor) -> Tensor {
        self.forward_impl(input, true, None)
    }

    /// Forward pass using the *fitted polynomial* activations (the ideal
    /// noise-free FHE output); `ranges[id]` holds each activation's fitted
    /// input range.
    pub fn forward_poly(&self, input: &Tensor, acts: &crate::act::CompiledActs) -> Tensor {
        self.forward_impl(input, false, Some(acts))
    }

    /// Reference forward pass returning every node's output (used by range
    /// estimation).
    pub fn forward_all_exact(&self, input: &Tensor) -> Vec<Tensor> {
        let vals = self.forward_nodes(input, true, None);
        vals.into_iter()
            .map(|v| v.expect("all nodes evaluated"))
            .collect()
    }

    /// Polynomial-activation forward pass returning every node's output
    /// (used by the poly-aware range-estimation refinement).
    pub fn forward_all_poly(&self, input: &Tensor, acts: &crate::act::CompiledActs) -> Vec<Tensor> {
        let vals = self.forward_nodes(input, false, Some(acts));
        vals.into_iter()
            .map(|v| v.expect("all nodes evaluated"))
            .collect()
    }

    fn forward_impl(
        &self,
        input: &Tensor,
        exact: bool,
        acts: Option<&crate::act::CompiledActs>,
    ) -> Tensor {
        let mut vals = self.forward_nodes(input, exact, acts);
        vals[self.output_node()].take().unwrap()
    }

    fn forward_nodes(
        &self,
        input: &Tensor,
        exact: bool,
        acts: Option<&crate::act::CompiledActs>,
    ) -> Vec<Option<Tensor>> {
        let mut vals: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        vals[0] = Some(input.clone());
        for (id, node) in self.nodes.iter().enumerate().skip(1) {
            let x = vals[node.inputs[0]]
                .as_ref()
                .expect("topological order violated")
                .clone();
            let out = match &node.layer {
                Layer::Input => unreachable!(),
                Layer::Conv2d {
                    weight,
                    bias,
                    stride,
                    padding,
                    dilation,
                    groups,
                } => {
                    let p = Conv2dParams {
                        stride: *stride,
                        padding: *padding,
                        dilation: *dilation,
                        groups: *groups,
                    };
                    conv2d(&x, weight, bias, p)
                }
                Layer::BatchNorm2d(bn) => {
                    batch_norm2d(&x, &bn.gamma, &bn.beta, &bn.mean, &bn.var, bn.eps)
                }
                Layer::Linear { weight, bias } => {
                    let out = linear(x.data(), weight, bias);
                    let n = out.len();
                    Tensor::from_vec(&[n, 1, 1], out)
                }
                Layer::AvgPool2d { k, stride, padding } => avg_pool2d(&x, *k, *stride, *padding),
                Layer::GlobalAvgPool => {
                    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                    let mut out = Tensor::zeros(&[c, 1, 1]);
                    for ch in 0..c {
                        let s: f64 = (0..h * w).map(|i| x.data()[ch * h * w + i]).sum();
                        out.data_mut()[ch] = s / (h * w) as f64;
                    }
                    out
                }
                Layer::ReLU { .. } if exact => x.map(|v| v.max(0.0)),
                Layer::SiLU { .. } if exact => x.map(|v| v / (1.0 + (-v).exp())),
                Layer::Activation { table, .. } if exact => x.map(*table),
                Layer::Square => x.map(|v| v * v),
                Layer::ReLU { .. } | Layer::SiLU { .. } | Layer::Activation { .. } => {
                    let acts = acts.expect("polynomial forward needs compiled activations");
                    acts.apply(id, &x)
                }
                Layer::Flatten => {
                    let n = x.len();
                    x.reshape(&[n, 1, 1])
                }
                Layer::Add => {
                    let y = vals[node.inputs[1]].as_ref().unwrap();
                    x.add(y)
                }
                Layer::Output => x,
            };
            vals[id] = Some(out);
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(rng: &mut StdRng) -> Network {
        let mut net = Network::new(1, 8, 8);
        let x = net.input();
        let c1 = net.conv2d("conv1", x, 4, 3, 1, 1, 1, rng);
        let a1 = net.relu("act1", c1, &[15]);
        let p = net.avg_pool2d("pool", a1, 2, 2);
        let f = net.flatten("flat", p);
        let l = net.linear("fc", f, 10, rng);
        net.output(l);
        net
    }

    #[test]
    fn shapes_are_inferred() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = tiny_net(&mut rng);
        assert_eq!(net.shape(1), (4, 8, 8)); // conv
        assert_eq!(net.shape(3), (4, 4, 4)); // pool
        assert_eq!(net.shape(4), (64, 1, 1)); // flatten
        assert_eq!(net.shape(5), (10, 1, 1)); // fc
    }

    #[test]
    fn forward_exact_runs() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = tiny_net(&mut rng);
        let input = Tensor::kaiming(&[1, 8, 8], 64, &mut rng);
        let out = net.forward_exact(&input);
        assert_eq!(out.shape(), &[10, 1, 1]);
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn residual_add_requires_matching_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Network::new(2, 4, 4);
        let x = net.input();
        let c = net.conv2d("c", x, 2, 3, 1, 1, 1, &mut rng);
        let a = net.add("res", c, x);
        net.output(a);
        let input = Tensor::kaiming(&[2, 4, 4], 32, &mut rng);
        let out = net.forward_exact(&input);
        assert_eq!(out.shape(), &[2, 4, 4]);
    }

    #[test]
    fn param_and_flop_counts_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = tiny_net(&mut rng);
        assert_eq!(net.param_count(), 4 * 9 + 4 + 64 * 10 + 10);
        assert!(net.flop_count() > net.param_count());
    }
}
