//! [`PlainBackend`]: the cleartext rotation-algebra oracle.
//!
//! Linear layers run through the *exact* executor rotation algebra
//! (`orion_linear::exec_plain_parallel`: hoisted baby steps, pre-rotated
//! diagonals, giant-step group rotations — fanned out on the shared rayon
//! pool) instead of the reference convolution, making this engine the
//! correctness oracle for the packing math end-to-end. Activations are
//! evaluated with the same fitted polynomials as the other engines;
//! level bookkeeping mirrors the placement policy so the [`Counting`]
//! decorator tallies identically.
//!
//! [`Counting`]: crate::backend::Counting

use crate::backend::{run_program, Counting, EvalBackend, LinearRef};
use crate::compile::Compiled;
use orion_linear::exec::{exec_plain_parallel, exec_plain_parallel_shared, shared_rot_plain};
use orion_linear::values::{BiasValues, ConvDiagSource, DenseDiagSource};
use orion_poly::cheb::ChebPoly;
use orion_sim::OpCounter;
use orion_tensor::Tensor;

/// A "ciphertext" of the plain oracle: cleartext slots plus the mirrored
/// level for placement bookkeeping.
#[derive(Clone, Debug)]
pub struct PlainCiphertext {
    /// Slot values.
    pub slots: Vec<f64>,
    /// Mirrored multiplicative level.
    pub level: usize,
}

/// The cleartext rotation-algebra engine (see module docs).
pub struct PlainBackend {
    slots: usize,
    l_eff: usize,
    prepared: bool,
}

impl PlainBackend {
    /// Builds an oracle matching a compiled program's options.
    pub fn new(c: &Compiled) -> Self {
        Self {
            slots: c.opts.slots,
            l_eff: c.opts.l_eff,
            prepared: false,
        }
    }

    /// Builds an oracle with explicit geometry.
    pub fn with_geometry(slots: usize, l_eff: usize) -> Self {
        Self {
            slots,
            l_eff,
            prepared: false,
        }
    }

    /// Models the prepared serving mode (zero per-inference encodes in the
    /// tally); see `TraceBackend::prepared`.
    pub fn prepared(c: &Compiled) -> Self {
        Self {
            prepared: true,
            ..Self::new(c)
        }
    }
}

/// Cleartext `HRot` semantics: `out[i] = in[(i + k) mod n]`.
fn rot_slots(v: &[f64], k: isize) -> Vec<f64> {
    let n = v.len() as isize;
    (0..v.len())
        .map(|i| v[((i as isize + k).rem_euclid(n)) as usize])
        .collect()
}

impl EvalBackend for PlainBackend {
    type Ciphertext = PlainCiphertext;
    type Plaintext = Vec<f64>;
    type SharedRot = std::collections::HashMap<(u32, usize), Vec<f64>>;

    fn name(&self) -> &'static str {
        "plain"
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn level_of(&self, ct: &PlainCiphertext) -> usize {
        ct.level
    }

    fn encrypt(&self, vals: &[f64], level: usize) -> PlainCiphertext {
        let mut slots = vals.to_vec();
        slots.resize(self.slots, 0.0);
        PlainCiphertext { slots, level }
    }

    fn decrypt(&self, ct: &PlainCiphertext) -> Vec<f64> {
        ct.slots.clone()
    }

    fn encode(&self, vals: &[f64], _level: usize) -> Vec<f64> {
        vals.to_vec()
    }

    fn add(&self, a: &PlainCiphertext, b: &PlainCiphertext) -> PlainCiphertext {
        assert_eq!(a.level, b.level, "HAdd level mismatch");
        PlainCiphertext {
            slots: a.slots.iter().zip(&b.slots).map(|(x, y)| x + y).collect(),
            level: a.level,
        }
    }

    fn add_plain(&self, a: &PlainCiphertext, p: &Vec<f64>) -> PlainCiphertext {
        PlainCiphertext {
            slots: a
                .slots
                .iter()
                .enumerate()
                .map(|(i, x)| x + p.get(i).copied().unwrap_or(0.0))
                .collect(),
            level: a.level,
        }
    }

    fn pmult(&self, a: &PlainCiphertext, p: &Vec<f64>) -> PlainCiphertext {
        PlainCiphertext {
            slots: a
                .slots
                .iter()
                .enumerate()
                .map(|(i, x)| x * p.get(i).copied().unwrap_or(0.0))
                .collect(),
            level: a.level,
        }
    }

    fn hmult(&self, a: &PlainCiphertext, b: &PlainCiphertext) -> PlainCiphertext {
        assert_eq!(a.level, b.level, "HMult level mismatch");
        PlainCiphertext {
            slots: a.slots.iter().zip(&b.slots).map(|(x, y)| x * y).collect(),
            level: a.level,
        }
    }

    fn rotate(&self, a: &PlainCiphertext, k: isize) -> PlainCiphertext {
        PlainCiphertext {
            slots: rot_slots(&a.slots, k),
            level: a.level,
        }
    }

    fn rescale(&self, a: &PlainCiphertext) -> PlainCiphertext {
        assert!(a.level >= 1, "rescale at level 0 — bootstrap required");
        PlainCiphertext {
            slots: a.slots.clone(),
            level: a.level - 1,
        }
    }

    fn drop_to_level(&self, a: &PlainCiphertext, level: usize) -> PlainCiphertext {
        assert!(level <= a.level, "cannot drop upward");
        PlainCiphertext {
            slots: a.slots.clone(),
            level,
        }
    }

    fn bootstrap(&self, a: &PlainCiphertext) -> PlainCiphertext {
        PlainCiphertext {
            slots: a.slots.clone(),
            level: self.l_eff,
        }
    }

    fn linear_encodes_per_inference(&self, _step: usize) -> bool {
        !self.prepared
    }

    fn activation_encodes_per_inference(&self, _step: usize) -> bool {
        !self.prepared
    }

    fn linear_layer(
        &self,
        layer: &LinearRef<'_>,
        inputs: &[PlainCiphertext],
        level: usize,
    ) -> Vec<PlainCiphertext> {
        let slots = self.slots;
        let blocks: Vec<Vec<f64>> = inputs.iter().map(|ct| ct.slots.clone()).collect();
        let (out_blocks, bias_blocks) = match layer {
            LinearRef::Conv {
                plan,
                spec,
                weight,
                bias,
                in_l,
                out_l,
                ..
            } => {
                let src = ConvDiagSource {
                    in_l: **in_l,
                    out_l: **out_l,
                    spec: **spec,
                    weights: weight,
                };
                (
                    exec_plain_parallel(plan, &src, &blocks),
                    BiasValues::conv(out_l, bias, slots),
                )
            }
            LinearRef::Dense {
                plan,
                weight,
                bias,
                in_l,
                n_out,
                ..
            } => {
                let src = DenseDiagSource::new((*weight).clone(), in_l);
                (
                    exec_plain_parallel(plan, &src, &blocks),
                    BiasValues::dense(*n_out, bias, slots),
                )
            }
        };
        out_blocks
            .into_iter()
            .enumerate()
            .map(|(b, mut block)| {
                if let Some(bias) = bias_blocks.get(b) {
                    for (x, &v) in block.iter_mut().zip(bias) {
                        *x += v;
                    }
                }
                PlainCiphertext {
                    slots: block,
                    level: level - 1,
                }
            })
            .collect()
    }

    fn hoist_rotations(
        &self,
        cts: &[PlainCiphertext],
        _level: usize,
        rots: &[(u32, usize)],
    ) -> Self::SharedRot {
        let blocks: Vec<Vec<f64>> = cts.iter().map(|ct| ct.slots.clone()).collect();
        shared_rot_plain(&blocks, rots)
    }

    fn linear_layer_shared(
        &self,
        layer: &LinearRef<'_>,
        inputs: &[PlainCiphertext],
        level: usize,
        shared: &Self::SharedRot,
    ) -> Vec<PlainCiphertext> {
        let slots = self.slots;
        let blocks: Vec<Vec<f64>> = inputs.iter().map(|ct| ct.slots.clone()).collect();
        let (out_blocks, bias_blocks) = match layer {
            LinearRef::Conv {
                plan,
                spec,
                weight,
                bias,
                in_l,
                out_l,
                ..
            } => {
                let src = ConvDiagSource {
                    in_l: **in_l,
                    out_l: **out_l,
                    spec: **spec,
                    weights: weight,
                };
                (
                    exec_plain_parallel_shared(plan, &src, &blocks, shared),
                    BiasValues::conv(out_l, bias, slots),
                )
            }
            LinearRef::Dense {
                plan,
                weight,
                bias,
                in_l,
                n_out,
                ..
            } => {
                let src = DenseDiagSource::new((*weight).clone(), in_l);
                (
                    exec_plain_parallel_shared(plan, &src, &blocks, shared),
                    BiasValues::dense(*n_out, bias, slots),
                )
            }
        };
        out_blocks
            .into_iter()
            .enumerate()
            .map(|(b, mut block)| {
                if let Some(bias) = bias_blocks.get(b) {
                    for (x, &v) in block.iter_mut().zip(bias) {
                        *x += v;
                    }
                }
                PlainCiphertext {
                    slots: block,
                    level: level - 1,
                }
            })
            .collect()
    }

    fn scale_down(&self, ct: &PlainCiphertext, factor: f64, level: usize) -> PlainCiphertext {
        PlainCiphertext {
            slots: ct.slots.iter().map(|x| x * factor).collect(),
            level: level - 1,
        }
    }

    fn poly_stage(
        &self,
        ct: &PlainCiphertext,
        coeffs: &[f64],
        normalize: bool,
        level: usize,
        _step: usize,
    ) -> PlainCiphertext {
        let d = coeffs.len() - 1;
        let depth = orion_poly::eval::fhe_eval_depth(d) + usize::from(normalize);
        let p = ChebPoly::new(coeffs.to_vec());
        PlainCiphertext {
            slots: ct.slots.iter().map(|&x| p.eval(x)).collect(),
            level: level - depth,
        }
    }

    fn relu_final(
        &self,
        u: &PlainCiphertext,
        sign: &PlainCiphertext,
        magnitude: f64,
        level: usize,
    ) -> PlainCiphertext {
        PlainCiphertext {
            slots: u
                .slots
                .iter()
                .zip(&sign.slots)
                .map(|(&x, &sg)| magnitude * x * (sg + 1.0) * 0.5)
                .collect(),
            level: level - 2,
        }
    }

    fn square_activation(&self, ct: &PlainCiphertext, level: usize) -> PlainCiphertext {
        PlainCiphertext {
            slots: ct.slots.iter().map(|&x| x * x).collect(),
            level: level - 2,
        }
    }
}

/// Result of a plain-oracle run.
pub struct PlainRun {
    /// The network output.
    pub output: Tensor,
    /// Uniform operation statistics (from the [`Counting`] decorator).
    pub counter: OpCounter,
}

/// Runs a compiled program through the plain rotation-algebra oracle with
/// uniform op-counting.
pub fn run_plain(c: &Compiled, input: &Tensor) -> PlainRun {
    let backend = Counting::new(PlainBackend::new(c), c.opts.cost.clone(), c.opts.l_eff);
    let run = run_program(c, &backend, input);
    PlainRun {
        output: run.output,
        counter: backend.into_parts().1,
    }
}
