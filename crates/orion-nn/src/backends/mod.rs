//! The three [`EvalBackend`](crate::backend::EvalBackend) engines.
//!
//! | engine | ciphertext | linear layers | use |
//! |---|---|---|---|
//! | [`CkksBackend`] | real RNS-CKKS | double-hoisted BSGS over ciphertexts | encrypted inference |
//! | [`TraceBackend`] | `f64` slots + level bookkeeping | reference conv/linear | paper-scale modeling |
//! | [`PlainBackend`] | `f64` slots + level bookkeeping | exact rotation algebra (`exec_plain_parallel`) | packing-math oracle |
//!
//! All three are `&self` engines driven by the single dataflow scheduler
//! ([`crate::backend::run_program`] over [`crate::sched`]) and count ops
//! identically through [`crate::backend::Counting`].

pub mod ckks;
pub mod plain;
pub mod trace;

pub use ckks::{CkksBackend, PreparedLayerFault};
pub use plain::{run_plain, PlainBackend, PlainCiphertext, PlainRun};
pub use trace::TraceBackend;
