//! [`TraceBackend`]: the modeled cleartext engine.
//!
//! Values are computed exactly (reference convolutions + fitted
//! polynomial activations) on plain `f64` slot vectors while the
//! underlying [`TraceEngine`] enforces FHE legality — multiplications
//! must be rescaled, rescales consume levels, level-0 wires must
//! bootstrap. This is how the paper's ImageNet-scale reporting columns
//! are regenerated without hours of modular arithmetic; wrap it in
//! [`crate::backend::Counting`] to collect them.

use crate::backend::{EvalBackend, LinearRef};
use crate::compile::Compiled;
use orion_poly::cheb::ChebPoly;
use orion_sim::trace::{TraceCiphertext, TraceEngine};
use orion_tensor::{conv2d, linear, Conv2dParams, Tensor};

/// The modeled cleartext engine (see module docs).
pub struct TraceBackend {
    /// The legality-enforcing trace engine.
    pub engine: TraceEngine,
    prepared: bool,
}

impl TraceBackend {
    /// Builds an engine matching a compiled program's options.
    pub fn new(c: &Compiled) -> Self {
        let l_eff = c.opts.l_eff;
        Self {
            engine: TraceEngine::new(c.opts.slots, l_eff, l_eff),
            prepared: false,
        }
    }

    /// Builds an engine that models the *prepared* serving mode: weight
    /// encodes happen at setup, so the per-inference tally records zero
    /// encodes — mirroring `CkksBackend::with_prepared` so modeled and
    /// real runs stay counter-identical.
    pub fn prepared(c: &Compiled) -> Self {
        Self {
            prepared: true,
            ..Self::new(c)
        }
    }
}

/// Splits a packed slot vector into ciphertext-sized blocks at `level`.
pub(crate) fn chunk_blocks(
    slots_vec: Vec<f64>,
    slots: usize,
    level: usize,
) -> Vec<TraceCiphertext> {
    let blocks = slots_vec.len().div_ceil(slots).max(1);
    (0..blocks)
        .map(|b| {
            let mut s = vec![0.0; slots];
            let lo = b * slots;
            let hi = ((b + 1) * slots).min(slots_vec.len());
            s[..hi - lo].copy_from_slice(&slots_vec[lo..hi]);
            TraceCiphertext {
                slots: s,
                level,
                pending: 0,
            }
        })
        .collect()
}

/// Concatenates the first `n` slots across a wire's ciphertexts.
pub(crate) fn gather_slots(cts: &[TraceCiphertext], n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for ct in cts {
        out.extend_from_slice(&ct.slots);
    }
    out.resize(n, 0.0);
    out
}

impl EvalBackend for TraceBackend {
    type Ciphertext = TraceCiphertext;
    type Plaintext = Vec<f64>;
    // The trace engine computes linear layers by reference convolution on
    // gathered slots — there is no rotation algebra to share, so the
    // shared-rotation handle is empty and shared consumers just run the
    // ordinary layer.
    type SharedRot = ();

    fn name(&self) -> &'static str {
        "trace"
    }

    fn slots(&self) -> usize {
        self.engine.slots
    }

    fn level_of(&self, ct: &TraceCiphertext) -> usize {
        ct.level
    }

    fn encrypt(&self, vals: &[f64], level: usize) -> TraceCiphertext {
        self.engine.encrypt(vals, level)
    }

    fn decrypt(&self, ct: &TraceCiphertext) -> Vec<f64> {
        self.engine.decrypt(ct)
    }

    fn encode(&self, vals: &[f64], _level: usize) -> Vec<f64> {
        vals.to_vec()
    }

    fn add(&self, a: &TraceCiphertext, b: &TraceCiphertext) -> TraceCiphertext {
        self.engine.hadd(a, b)
    }

    fn add_plain(&self, a: &TraceCiphertext, p: &Vec<f64>) -> TraceCiphertext {
        self.engine.padd(a, p)
    }

    fn pmult(&self, a: &TraceCiphertext, p: &Vec<f64>) -> TraceCiphertext {
        self.engine.pmult(a, p)
    }

    fn hmult(&self, a: &TraceCiphertext, b: &TraceCiphertext) -> TraceCiphertext {
        self.engine.hmult(a, b)
    }

    fn rotate(&self, a: &TraceCiphertext, k: isize) -> TraceCiphertext {
        self.engine.rotate(a, k)
    }

    fn rescale(&self, a: &TraceCiphertext) -> TraceCiphertext {
        self.engine.rescale(a)
    }

    fn drop_to_level(&self, a: &TraceCiphertext, level: usize) -> TraceCiphertext {
        self.engine.drop_to_level(a, level)
    }

    fn bootstrap(&self, a: &TraceCiphertext) -> TraceCiphertext {
        self.engine.bootstrap(a)
    }

    fn linear_encodes_per_inference(&self, _step: usize) -> bool {
        !self.prepared
    }

    fn activation_encodes_per_inference(&self, _step: usize) -> bool {
        !self.prepared
    }

    fn linear_layer(
        &self,
        layer: &LinearRef<'_>,
        inputs: &[TraceCiphertext],
        level: usize,
    ) -> Vec<TraceCiphertext> {
        let slots = self.engine.slots;
        match layer {
            LinearRef::Conv {
                spec,
                weight,
                bias,
                in_l,
                out_l,
                ..
            } => {
                let raster = in_l.unpack(&gather_slots(inputs, in_l.total_slots()));
                let x = Tensor::from_vec(&[in_l.c, in_l.h, in_l.w], raster);
                let p = Conv2dParams {
                    stride: spec.stride,
                    padding: spec.padding,
                    dilation: spec.dilation,
                    groups: spec.groups,
                };
                let y = conv2d(&x, weight, bias, p);
                chunk_blocks(out_l.pack(y.data()), slots, level - 1)
            }
            LinearRef::Dense {
                weight, bias, in_l, ..
            } => {
                let raster = in_l.unpack(&gather_slots(inputs, in_l.total_slots()));
                let y = linear(&raster, weight, bias);
                chunk_blocks(y, slots, level - 1)
            }
        }
    }

    fn hoist_rotations(
        &self,
        _cts: &[TraceCiphertext],
        _level: usize,
        _rots: &[(u32, usize)],
    ) -> Self::SharedRot {
    }

    fn linear_layer_shared(
        &self,
        layer: &LinearRef<'_>,
        inputs: &[TraceCiphertext],
        level: usize,
        _shared: &Self::SharedRot,
    ) -> Vec<TraceCiphertext> {
        self.linear_layer(layer, inputs, level)
    }

    fn scale_down(&self, ct: &TraceCiphertext, factor: f64, _level: usize) -> TraceCiphertext {
        let m = self.engine.pmult_scalar(ct, factor);
        self.engine.rescale(&m)
    }

    fn poly_stage(
        &self,
        ct: &TraceCiphertext,
        coeffs: &[f64],
        normalize: bool,
        level: usize,
        _step: usize,
    ) -> TraceCiphertext {
        let d = coeffs.len() - 1;
        let depth = orion_poly::eval::fhe_eval_depth(d) + usize::from(normalize);
        let p = ChebPoly::new(coeffs.to_vec());
        TraceCiphertext {
            slots: ct.slots.iter().map(|&x| p.eval(x)).collect(),
            level: level - depth,
            pending: 0,
        }
    }

    fn relu_final(
        &self,
        u: &TraceCiphertext,
        sign: &TraceCiphertext,
        magnitude: f64,
        level: usize,
    ) -> TraceCiphertext {
        TraceCiphertext {
            slots: u
                .slots
                .iter()
                .zip(&sign.slots)
                .map(|(&x, &sg)| magnitude * x * (sg + 1.0) * 0.5)
                .collect(),
            level: level - 2,
            pending: 0,
        }
    }

    fn square_activation(&self, ct: &TraceCiphertext, level: usize) -> TraceCiphertext {
        TraceCiphertext {
            slots: ct.slots.iter().map(|&x| x * x).collect(),
            level: level - 2,
            pending: 0,
        }
    }
}
