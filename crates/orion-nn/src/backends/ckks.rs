//! [`CkksBackend`]: the real RNS-CKKS engine.
//!
//! Borrows an [`FheSession`] (keys, encoder, evaluator, bootstrap oracle)
//! and executes program steps homomorphically, keeping every wire at
//! exactly scale Δ: linear layers run the double-hoisted BSGS executor
//! with weights encoded at prime scale, activation stages follow the
//! errorless Chebyshev scale schedule.

use crate::backend::{EvalBackend, LinearRef};
use crate::fhe_exec::FheSession;
use orion_ckks::encrypt::Ciphertext;
use orion_linear::exec::{
    exec_fhe as linear_exec, exec_fhe_prepared, exec_fhe_prepared_shared, exec_fhe_shared,
    FheLinearContext, SharedRotations,
};
use orion_linear::paged::LayerSource;
use orion_linear::prepared::PreparedProgram;
use orion_linear::store::StoreError;
use orion_linear::values::{BiasValues, ConvDiagSource, DenseDiagSource};
use orion_poly::eval::{
    evaluate_chebyshev_src, set_level_scale, set_level_scale_src, CachedConsts, ConstSource,
    FreshConsts,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Panic payload thrown when a paged prepared layer cannot be faulted in
/// (corrupt or missing spill file). `EvalBackend::linear_layer` cannot
/// return a `Result`, so the engine unwinds with this typed payload; the
/// serving layer catches the unwind and turns it into a per-request error
/// instead of letting it kill a worker pool.
#[derive(Debug)]
pub struct PreparedLayerFault {
    /// The program step whose layer failed to load.
    pub step: usize,
    /// The underlying store failure.
    pub error: StoreError,
}

/// The real-CKKS engine (see module docs). With a prepared source attached
/// ([`CkksBackend::with_prepared`] / [`CkksBackend::with_source`]) linear
/// layers consume setup-time weight encodings through the parallel BSGS
/// executor — possibly faulted in from disk under a memory cap — and poly
/// stages replay recorded constant plaintexts instead of re-encoding
/// anything per inference.
///
/// All run-time state is interior-mutable (the injected request queue
/// behind a mutex, drift counters as atomics), so the engine is `Sync` and
/// the dataflow scheduler can drive it from many pool threads at once.
pub struct CkksBackend<'s> {
    session: &'s FheSession,
    prepared: Option<Arc<dyn LayerSource>>,
    /// Pre-encrypted input ciphertexts (the serving path: clients submit
    /// encrypted requests); `encrypt` pops them in packing order (the
    /// `Input` step is a single scheduled unit, so pops are ordered).
    injected: Option<parking_lot::Mutex<VecDeque<Ciphertext>>>,
    act_fresh_encodes: AtomicU64,
    act_cache_misses: AtomicU64,
}

impl<'s> CkksBackend<'s> {
    /// Wraps a session (on-the-fly weight encoding).
    pub fn new(session: &'s FheSession) -> Self {
        Self {
            session,
            prepared: None,
            injected: None,
            act_fresh_encodes: AtomicU64::new(0),
            act_cache_misses: AtomicU64::new(0),
        }
    }

    /// Wraps a session with a fully-resident prepared cache: linear layers
    /// and poly stages whose step id is in the cache run with zero
    /// per-inference encodes.
    pub fn with_prepared(session: &'s FheSession, prepared: Arc<PreparedProgram>) -> Self {
        Self::with_source(session, prepared)
    }

    /// Wraps a session with any [`LayerSource`] — a resident
    /// `PreparedProgram` or a memory-capped `PagedProgram` that faults
    /// layers in from disk.
    pub fn with_source(session: &'s FheSession, source: Arc<dyn LayerSource>) -> Self {
        Self {
            prepared: Some(source),
            ..Self::new(session)
        }
    }

    /// Runs on pre-encrypted inputs: `encrypt` hands out `cts` in packing
    /// order instead of encrypting the (ignored) input tensor values.
    pub fn inject_inputs(mut self, cts: Vec<Ciphertext>) -> Self {
        self.injected = Some(parking_lot::Mutex::new(cts.into()));
        self
    }

    /// Constant plaintexts encoded fresh inside poly stages (on-the-fly
    /// activation path).
    pub fn act_fresh_encodes(&self) -> u64 {
        self.act_fresh_encodes.load(Ordering::Relaxed)
    }

    /// Prepared-constant cache misses inside poly stages (0 on a faithful
    /// replay; nonzero means the recording drifted and the engine fell
    /// back to fresh encodes).
    pub fn act_cache_misses(&self) -> u64 {
        self.act_cache_misses.load(Ordering::Relaxed)
    }

    /// The underlying session.
    pub fn session(&self) -> &'s FheSession {
        self.session
    }

    /// The shared evaluation core of `poly_stage`: one Chebyshev stage
    /// plus the optional exact-Δ normalization, all constants drawn from
    /// `src`.
    fn poly_stage_with(
        &self,
        src: &dyn ConstSource,
        ct: &Ciphertext,
        coeffs: &[f64],
        normalize: bool,
    ) -> Ciphertext {
        let s = self.session;
        let out = evaluate_chebyshev_src(&s.eval, &s.enc, src, ct, coeffs);
        if normalize {
            set_level_scale_src(&s.eval, &s.enc, src, &out, out.level() - 1, s.ctx.scale())
        } else {
            out
        }
    }
}

impl EvalBackend for CkksBackend<'_> {
    type Ciphertext = Ciphertext;
    type Plaintext = orion_ckks::encrypt::Plaintext;
    type SharedRot = SharedRotations;

    fn name(&self) -> &'static str {
        "ckks"
    }

    fn slots(&self) -> usize {
        self.session.ctx.slots()
    }

    fn level_of(&self, ct: &Ciphertext) -> usize {
        ct.level()
    }

    fn scale_log2_of(&self, ct: &Ciphertext) -> f64 {
        ct.scale.log2()
    }

    fn encrypt(&self, vals: &[f64], level: usize) -> Ciphertext {
        if let Some(queue) = self.injected.as_ref() {
            let ct = queue
                .lock()
                .pop_front()
                .expect("not enough injected input ciphertexts for the program's input wire");
            assert_eq!(ct.level(), level, "injected ciphertext at the wrong level");
            return ct;
        }
        let s = self.session;
        let pt = s.enc.encode(vals, s.ctx.scale(), level, false);
        let mut rng = s.rng.lock();
        s.encryptor.encrypt(&pt, &mut *rng)
    }

    fn decrypt(&self, ct: &Ciphertext) -> Vec<f64> {
        let s = self.session;
        s.enc.decode(&s.decryptor.decrypt(ct))
    }

    fn encode(&self, vals: &[f64], level: usize) -> Self::Plaintext {
        let s = self.session;
        s.enc.encode(vals, s.ctx.scale(), level, false)
    }

    fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.session.eval.add(a, b)
    }

    fn add_plain(&self, a: &Ciphertext, p: &Self::Plaintext) -> Ciphertext {
        self.session.eval.add_plain(a, p)
    }

    fn pmult(&self, a: &Ciphertext, p: &Self::Plaintext) -> Ciphertext {
        self.session.eval.mul_plain(a, p)
    }

    fn hmult(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.session.eval.mul_relin(a, b)
    }

    fn rotate(&self, a: &Ciphertext, k: isize) -> Ciphertext {
        self.session.eval.rotate(a, k)
    }

    fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        let mut c = a.clone();
        self.session.eval.rescale_assign(&mut c);
        c
    }

    fn drop_to_level(&self, a: &Ciphertext, level: usize) -> Ciphertext {
        let mut c = a.clone();
        self.session.eval.drop_to_level(&mut c, level);
        c
    }

    fn bootstrap(&self, a: &Ciphertext) -> Ciphertext {
        self.session.oracle.refresh(a)
    }

    fn linear_encodes_per_inference(&self, step: usize) -> bool {
        // per step: a partially populated cache still encodes on the fly
        // for the steps it misses, and the tally must say so
        self.prepared
            .as_ref()
            .is_none_or(|p| !p.contains_layer(step))
    }

    fn activation_encodes_per_inference(&self, step: usize) -> bool {
        self.prepared
            .as_ref()
            .is_none_or(|p| p.activation(step).is_none())
    }

    fn prefetch_linear(&self, step: usize) {
        // Advisory: start faulting the layer into residency (a no-op for
        // resident sources). Runs as its own scheduled unit on the pool,
        // so execution never blocks on it; the real `fetch_layer` below
        // surfaces any store error.
        if let Some(src) = self.prepared.as_ref() {
            src.prefetch(step);
        }
    }

    fn linear_layer(
        &self,
        layer: &LinearRef<'_>,
        inputs: &[Ciphertext],
        _level: usize,
    ) -> Vec<Ciphertext> {
        let s = self.session;
        let slots = s.ctx.slots();
        let fctx = FheLinearContext {
            eval: &s.eval,
            enc: &s.enc,
        };
        // Serving path: consume the setup-time cache when this step has
        // one, faulting it in from disk if the source pages. A failed
        // fault unwinds with a typed payload (see [`PreparedLayerFault`]).
        if let Some(src) = self.prepared.as_ref() {
            match src.fetch_layer(layer.step()) {
                Ok(Some(p)) => return exec_fhe_prepared(&fctx, layer.plan(), &p, inputs),
                Ok(None) => {}
                Err(error) => std::panic::panic_any(PreparedLayerFault {
                    step: layer.step(),
                    error,
                }),
            }
        }
        match layer {
            LinearRef::Conv {
                plan,
                spec,
                weight,
                bias,
                in_l,
                out_l,
                ..
            } => {
                let src = ConvDiagSource {
                    in_l: **in_l,
                    out_l: **out_l,
                    spec: **spec,
                    weights: weight,
                };
                let bias_blocks = BiasValues::conv(out_l, bias, slots);
                linear_exec(&fctx, plan, &src, Some(&bias_blocks), inputs)
            }
            LinearRef::Dense {
                plan,
                weight,
                bias,
                in_l,
                n_out,
                ..
            } => {
                let src = DenseDiagSource::new((*weight).clone(), in_l);
                let bias_blocks = BiasValues::dense(*n_out, bias, slots);
                linear_exec(&fctx, plan, &src, Some(&bias_blocks), inputs)
            }
        }
    }

    fn hoist_rotations(
        &self,
        cts: &[Ciphertext],
        _level: usize,
        rots: &[(u32, usize)],
    ) -> SharedRotations {
        let s = self.session;
        let fctx = FheLinearContext {
            eval: &s.eval,
            enc: &s.enc,
        };
        SharedRotations::build(&fctx, cts, rots)
    }

    fn linear_layer_shared(
        &self,
        layer: &LinearRef<'_>,
        inputs: &[Ciphertext],
        _level: usize,
        shared: &SharedRotations,
    ) -> Vec<Ciphertext> {
        let s = self.session;
        let slots = s.ctx.slots();
        let fctx = FheLinearContext {
            eval: &s.eval,
            enc: &s.enc,
        };
        if let Some(src) = self.prepared.as_ref() {
            match src.fetch_layer(layer.step()) {
                Ok(Some(p)) => {
                    return exec_fhe_prepared_shared(&fctx, layer.plan(), &p, inputs, shared)
                }
                Ok(None) => {}
                Err(error) => std::panic::panic_any(PreparedLayerFault {
                    step: layer.step(),
                    error,
                }),
            }
        }
        match layer {
            LinearRef::Conv {
                plan,
                spec,
                weight,
                bias,
                in_l,
                out_l,
                ..
            } => {
                let src = ConvDiagSource {
                    in_l: **in_l,
                    out_l: **out_l,
                    spec: **spec,
                    weights: weight,
                };
                let bias_blocks = BiasValues::conv(out_l, bias, slots);
                exec_fhe_shared(&fctx, plan, &src, Some(&bias_blocks), inputs, shared)
            }
            LinearRef::Dense {
                plan,
                weight,
                bias,
                in_l,
                n_out,
                ..
            } => {
                let src = DenseDiagSource::new((*weight).clone(), in_l);
                let bias_blocks = BiasValues::dense(*n_out, bias, slots);
                exec_fhe_shared(&fctx, plan, &src, Some(&bias_blocks), inputs, shared)
            }
        }
    }

    fn scale_down(&self, ct: &Ciphertext, factor: f64, level: usize) -> Ciphertext {
        let s = self.session;
        let q = s.ctx.moduli[level] as f64;
        let mut m = s.eval.mul_scalar(ct, factor, q);
        s.eval.rescale_assign(&mut m);
        m
    }

    fn scale_down_to(
        &self,
        ct: &Ciphertext,
        factor: f64,
        level: usize,
        out_level: usize,
    ) -> Ciphertext {
        // Fused kernel: scalar-multiply at the *full* level (so the
        // rescale divisor and rounding stay those of `scale_down`), then
        // rescale straight down to `out_level` without materializing the
        // intermediate limb vectors. Bit-identical to
        // `drop_to_level(scale_down(ct), out_level)` — the kernel folds
        // the popped limb only into the limbs that survive.
        let s = self.session;
        let q = s.ctx.moduli[level] as f64;
        let mut m = s.eval.mul_scalar(ct, factor, q);
        s.eval.rescale_to_level_assign(&mut m, out_level);
        m
    }

    fn poly_stage(
        &self,
        ct: &Ciphertext,
        coeffs: &[f64],
        normalize: bool,
        _level: usize,
        step: usize,
    ) -> Ciphertext {
        let act = self.prepared.as_ref().and_then(|p| p.activation(step));
        match act {
            // Serving path: replay the setup-time constant recording —
            // bit-identical math, zero per-inference encodes.
            Some(act) => {
                let src = CachedConsts::new(&act.consts);
                let out = self.poly_stage_with(&src, ct, coeffs, normalize);
                self.act_cache_misses
                    .fetch_add(src.misses(), Ordering::Relaxed);
                out
            }
            None => {
                let src = FreshConsts::new();
                let out = self.poly_stage_with(&src, ct, coeffs, normalize);
                self.act_fresh_encodes
                    .fetch_add(src.count(), Ordering::Relaxed);
                out
            }
        }
    }

    fn relu_final(
        &self,
        uc: &Ciphertext,
        sc: &Ciphertext,
        magnitude: f64,
        level: usize,
    ) -> Ciphertext {
        let s = self.session;
        let delta = s.ctx.scale();
        let lc = level - 1;
        let q_lc = s.ctx.moduli[lc] as f64;
        let q_lv = s.ctx.moduli[level] as f64;
        // (m·u/2) at a scale making the product land on Δ.
        let x_scale = delta * q_lc / sc.scale;
        let aux = q_lv * x_scale / uc.scale;
        let mut half = s.eval.mul_scalar(uc, 0.5 * magnitude, aux);
        s.eval.rescale_assign(&mut half);
        half.scale = x_scale;
        let mut prod = s.eval.mul_relin(&half, sc);
        s.eval.rescale_assign(&mut prod);
        prod.scale = delta;
        // + m·u/2 read at Δ.
        let mut half_x = set_level_scale(&s.eval, uc, prod.level(), delta * magnitude * 0.5);
        half_x.scale = delta;
        s.eval.add(&prod, &half_x)
    }

    fn square_activation(&self, ct: &Ciphertext, level: usize) -> Ciphertext {
        let s = self.session;
        let delta = s.ctx.scale();
        let q = s.ctx.moduli[level - 1] as f64;
        // aligned copy at scale q so the product rescales to Δ
        let aligned = set_level_scale(&s.eval, ct, level - 1, q);
        let mut base = ct.clone();
        s.eval.drop_to_level(&mut base, level - 1);
        let mut prod = s.eval.mul_relin(&base, &aligned);
        s.eval.rescale_assign(&mut prod);
        prod.scale = delta;
        prod
    }
}
