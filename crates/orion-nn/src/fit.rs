//! Range estimation (`net.fit()`, paper §6).
//!
//! "Orion handles this process automatically through `net.fit()`, which
//! accepts the entire training dataset as input, calculates per layer
//! scaling factors, and inserts scale-down multiplications directly into
//! the computational graph." — we run the exact reference forward pass
//! over a calibration set and record, for every activation, the largest
//! absolute input it will see (with a safety margin).

use crate::layer::Layer;
use crate::network::Network;
use orion_tensor::Tensor;
use std::collections::HashMap;

/// Fitted per-activation input ranges.
#[derive(Clone, Debug, Default)]
pub struct FitResult {
    /// Activation node id → input range `m` (inputs land in `[-m, m]`).
    pub ranges: HashMap<usize, f64>,
}

/// Safety margin applied on top of the observed maxima.
pub const RANGE_MARGIN: f64 = 1.5;

/// Runs the calibration set through the exact network, recording every
/// activation's input range.
pub fn fit(net: &Network, samples: &[Tensor]) -> FitResult {
    assert!(
        !samples.is_empty(),
        "fit needs at least one calibration sample"
    );
    let mut maxima: HashMap<usize, f64> = HashMap::new();
    for s in samples {
        let outs = net.forward_all_exact(s);
        for (id, node) in net.nodes.iter().enumerate() {
            if node.layer.is_activation() {
                let input = &outs[node.inputs[0]];
                let m = input.max_abs();
                let e = maxima.entry(id).or_insert(0.0);
                *e = e.max(m);
            }
        }
    }
    FitResult {
        ranges: maxima
            .into_iter()
            .map(|(id, m)| (id, (m * RANGE_MARGIN).max(1e-6)))
            .collect(),
    }
}

/// Poly-aware range estimation: after the initial exact-activation fit,
/// re-runs the calibration set through the *fitted polynomial* network and
/// widens any range the polynomial semantics exceed. High-degree Chebyshev
/// extrapolation beyond `[-1, 1]` is catastrophic (T₆₃ grows like
/// `cosh(63·acosh(u))`), so ranges must bound the polynomial forward, not
/// just the exact one — activation approximation errors compound through
/// deep networks.
pub fn fit_robust(net: &Network, samples: &[Tensor], iterations: usize) -> FitResult {
    let mut fitres = fit(net, samples);
    for _ in 0..iterations {
        let acts = compile_all_acts(net, &fitres);
        let mut changed = false;
        for s in samples {
            let outs = net.forward_all_poly(s, &acts);
            for (id, node) in net.nodes.iter().enumerate() {
                if node.layer.is_activation() {
                    let observed = outs[node.inputs[0]].max_abs();
                    let e = fitres.ranges.get_mut(&id).expect("fit covers activations");
                    // Cap the growth: a downstream explosion (Chebyshev
                    // extrapolation gone non-linear) must not poison the
                    // range with astronomically large values — grow
                    // geometrically and let the next iteration re-measure.
                    let m = if observed.is_finite() {
                        (observed * RANGE_MARGIN).min(*e * 8.0)
                    } else {
                        *e * 8.0
                    };
                    if m > *e {
                        *e = m;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    fitres
}

fn compile_all_acts(net: &Network, fitres: &FitResult) -> crate::act::CompiledActs {
    let mut acts = crate::act::CompiledActs::default();
    for (id, node) in net.nodes.iter().enumerate() {
        if node.layer.is_activation() {
            acts.map.insert(
                id,
                crate::act::compile_activation(&node.layer, fitres.ranges[&id]),
            );
        }
    }
    acts
}

/// Calibrates every batch-norm layer's statistics from data, in one
/// forward pass per sample (walking the graph and normalizing as we go —
/// the stand-in for loading *trained* running statistics, which is what
/// keeps activations well-scaled through deep networks).
pub fn calibrate_batch_norm(net: &mut Network, samples: &[Tensor]) {
    assert!(!samples.is_empty());
    let node_count = net.nodes.len();
    // Evaluate nodes in order, updating BN layers as their inputs become
    // available. We process per-node across the whole batch.
    let mut vals: Vec<Vec<Tensor>> = vec![Vec::new(); node_count];
    vals[0] = samples.to_vec();
    for id in 1..node_count {
        // Compute per-channel statistics for BN nodes before evaluating.
        if let Layer::BatchNorm2d(_) = &net.nodes[id].layer {
            let src = net.nodes[id].inputs[0];
            let c = net.nodes[id].shape.0;
            let mut mean = vec![0.0f64; c];
            let mut var = vec![0.0f64; c];
            let mut n = 0usize;
            for t in &vals[src] {
                let (h, w) = (t.shape()[1], t.shape()[2]);
                n += h * w;
                for ch in 0..c {
                    for i in 0..h * w {
                        mean[ch] += t.data()[ch * h * w + i];
                    }
                }
            }
            let denom = (n as f64).max(1.0);
            for m in mean.iter_mut() {
                *m /= denom;
            }
            for t in &vals[src] {
                let (h, w) = (t.shape()[1], t.shape()[2]);
                for ch in 0..c {
                    for i in 0..h * w {
                        let d = t.data()[ch * h * w + i] - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
            for v in var.iter_mut() {
                *v = (*v / denom).max(1e-12);
            }
            if let Layer::BatchNorm2d(bn) = &mut net.nodes[id].layer {
                bn.mean = mean;
                bn.var = var;
                bn.gamma = vec![1.0; c];
                bn.beta = vec![0.0; c];
            }
        }
        // Evaluate this node for every sample using (possibly updated)
        // parameters, via a sub-network forward on cached inputs.
        let node = net.nodes[id].clone();
        let outs: Vec<Tensor> = (0..samples.len())
            .map(|s| eval_single(net, &node, &vals, s))
            .collect();
        vals[id] = outs;
    }
}

fn eval_single(
    _net: &Network,
    node: &crate::network::ModuleNode,
    vals: &[Vec<Tensor>],
    sample: usize,
) -> Tensor {
    use orion_tensor::{avg_pool2d, batch_norm2d, conv2d, linear, Conv2dParams};
    let x = &vals[node.inputs[0]][sample];
    match &node.layer {
        Layer::Input => x.clone(),
        Layer::Conv2d {
            weight,
            bias,
            stride,
            padding,
            dilation,
            groups,
        } => {
            let p = Conv2dParams {
                stride: *stride,
                padding: *padding,
                dilation: *dilation,
                groups: *groups,
            };
            conv2d(x, weight, bias, p)
        }
        Layer::BatchNorm2d(bn) => batch_norm2d(x, &bn.gamma, &bn.beta, &bn.mean, &bn.var, bn.eps),
        Layer::Linear { weight, bias } => {
            let out = linear(x.data(), weight, bias);
            let n = out.len();
            Tensor::from_vec(&[n, 1, 1], out)
        }
        Layer::AvgPool2d { k, stride, padding } => avg_pool2d(x, *k, *stride, *padding),
        Layer::GlobalAvgPool => {
            let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
            let mut out = Tensor::zeros(&[c, 1, 1]);
            for ch in 0..c {
                let s: f64 = (0..h * w).map(|i| x.data()[ch * h * w + i]).sum();
                out.data_mut()[ch] = s / (h * w) as f64;
            }
            out
        }
        Layer::ReLU { .. } => x.map(|v| v.max(0.0)),
        Layer::SiLU { .. } => x.map(|v| v / (1.0 + (-v).exp())),
        Layer::Activation { table, .. } => x.map(*table),
        Layer::Square => x.map(|v| v * v),
        Layer::Flatten => {
            let n = x.len();
            x.clone().reshape(&[n, 1, 1])
        }
        Layer::Add => x.add(&vals[node.inputs[1]][sample]),
        Layer::Output => x.clone(),
    }
}

/// A default range assignment (all ranges = `r`) for compiling without a
/// calibration set.
pub fn fixed_ranges(net: &Network, r: f64) -> FitResult {
    let ranges = net
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.layer.is_activation())
        .map(|(id, _)| (id, r))
        .collect();
    FitResult { ranges }
}

/// Activation nodes of a network, in id order.
pub fn activation_nodes(net: &Network) -> Vec<usize> {
    net.nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.layer.is_activation())
        .map(|(id, _)| id)
        .collect()
}

/// Convenience check used by compile: ranges must cover every activation.
pub fn validate(net: &Network, fitres: &FitResult) {
    for id in activation_nodes(net) {
        assert!(
            fitres.ranges.contains_key(&id),
            "activation node {id} ({}) has no fitted range — call fit() first",
            net.nodes[id].name
        );
        if let Layer::Square = net.nodes[id].layer {
            // square needs no range, but having one is harmless
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_with_act() -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Network::new(1, 4, 4);
        let x = net.input();
        let c = net.conv2d("c", x, 2, 3, 1, 1, 1, &mut rng);
        let a = net.silu("act", c, 15);
        net.output(a);
        (net, rng)
    }

    #[test]
    fn fit_records_activation_ranges() {
        let (net, mut rng) = net_with_act();
        let samples: Vec<Tensor> = (0..4)
            .map(|_| Tensor::kaiming(&[1, 4, 4], 16, &mut rng))
            .collect();
        let f = fit(&net, &samples);
        assert_eq!(f.ranges.len(), 1);
        let &m = f.ranges.values().next().unwrap();
        assert!(m > 0.0 && m < 10.0);
        // The margin means m strictly exceeds the observed max.
        let observed = samples
            .iter()
            .map(|s| net.forward_all_exact(s)[1].max_abs())
            .fold(0.0, f64::max);
        assert!(m > observed);
    }

    #[test]
    fn fixed_ranges_cover_all_activations() {
        let (net, _) = net_with_act();
        let f = fixed_ranges(&net, 2.0);
        validate(&net, &f);
    }

    #[test]
    #[should_panic(expected = "no fitted range")]
    fn validate_rejects_missing_ranges() {
        let (net, _) = net_with_act();
        validate(&net, &FitResult::default());
    }
}

#[cfg(test)]
mod bn_tests {
    use super::*;
    use orion_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn calibrated_bn_normalizes_activations() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut net = Network::new(2, 8, 8);
        let x = net.input();
        // a conv with deliberately large weights: without calibration the
        // BN output would be far from unit scale
        let w = Tensor::from_vec(
            &[4, 2, 3, 3],
            (0..72).map(|_| rng.gen_range(-3.0..3.0)).collect(),
        );
        let c = net.conv2d_with("conv", x, w, vec![0.5; 4], 1, 1, 1, 1);
        let b = net.batch_norm2d("bn", c);
        net.output(b);
        let samples: Vec<Tensor> = (0..6)
            .map(|_| {
                Tensor::from_vec(
                    &[2, 8, 8],
                    (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                )
            })
            .collect();
        calibrate_batch_norm(&mut net, &samples);
        // After calibration, per-channel statistics of the BN output over
        // the calibration set are ~N(0, 1).
        let mut sum = [0.0f64; 4];
        let mut sumsq = [0.0f64; 4];
        let mut n = 0usize;
        for s in &samples {
            let out = net.forward_exact(s);
            let (h, w) = (out.shape()[1], out.shape()[2]);
            n += h * w;
            for ch in 0..4 {
                for i in 0..h * w {
                    let v = out.data()[ch * h * w + i];
                    sum[ch] += v;
                    sumsq[ch] += v * v;
                }
            }
        }
        for ch in 0..4 {
            let mean = sum[ch] / n as f64;
            let var = sumsq[ch] / n as f64 - mean * mean;
            assert!(mean.abs() < 0.05, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 0.1, "channel {ch} var {var}");
        }
    }

    #[test]
    fn calibration_keeps_deep_activations_healthy() {
        // The motivating failure: without calibrated BN, random-weight
        // SiLU stacks decay toward zero; with it, magnitudes stay O(1).
        let mut rng = StdRng::seed_from_u64(100);
        let mut net = Network::new(2, 8, 8);
        let x = net.input();
        let mut cur = x;
        for i in 0..6 {
            cur = net.conv2d(&format!("c{i}"), cur, 4.min(2 + i), 3, 1, 1, 1, &mut rng);
            cur = net.batch_norm2d(&format!("b{i}"), cur);
            cur = net.silu(&format!("a{i}"), cur, 15);
        }
        net.output(cur);
        let samples: Vec<Tensor> = (0..4)
            .map(|_| {
                Tensor::from_vec(
                    &[2, 8, 8],
                    (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                )
            })
            .collect();
        let before = net.forward_exact(&samples[0]).max_abs();
        calibrate_batch_norm(&mut net, &samples);
        let after = net.forward_exact(&samples[0]).max_abs();
        assert!(
            after > before,
            "calibration should prevent decay: {before} -> {after}"
        );
        assert!(after > 0.1, "deep output still healthy: {after}");
    }
}
