//! RNS polynomials in `Z_Q[X]/(X^N + 1)`.
//!
//! A polynomial at level ℓ is stored as ℓ+1 limbs (one residue vector per
//! chain modulus), optionally extended by a limb over the special prime
//! (used inside key-switching). Limbs live either in coefficient or
//! evaluation (NTT) representation; see paper §2.4–2.5.

use crate::params::Context;
use orion_math::modular::{neg_mod, reduce_i128, shoup_precompute};
use orion_math::parallel::{
    map_indexed, ntt_forward_batch, ntt_inverse_batch, ntt_parallel, pointwise_parallel,
};
use orion_math::simd;
use orion_telemetry::{time_class, OpClass};
use rand::Rng;

/// Representation of the limbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Form {
    /// Coefficient representation.
    Coeff,
    /// Evaluation (NTT) representation.
    Eval,
}

/// An RNS polynomial. `limbs[j]` holds the residues modulo `ctx.moduli[j]`
/// for `j ≤ level`; `special` (if present) holds residues modulo the
/// special prime.
#[derive(Clone, Debug, PartialEq)]
pub struct RnsPoly {
    /// Chain limbs, lowest modulus first. `limbs.len() == level + 1`.
    pub limbs: Vec<Vec<u64>>,
    /// Optional special-prime limb (key-switching basis extension).
    pub special: Option<Vec<u64>>,
    /// Current representation of every limb.
    pub form: Form,
}

impl RnsPoly {
    /// The all-zero polynomial at `level` (with a special limb if requested).
    /// Limb buffers come from the thread-local arena, so accumulator-heavy
    /// loops (key-switching) recycle instead of allocating.
    pub fn zero(ctx: &Context, level: usize, form: Form, with_special: bool) -> Self {
        let n = ctx.degree();
        Self {
            limbs: (0..=level)
                .map(|_| orion_math::arena::take_u64(n))
                .collect(),
            special: with_special.then(|| orion_math::arena::take_u64(n)),
            form,
        }
    }

    /// Returns every limb buffer to the thread-local arena. Calling this on
    /// hot-loop temporaries is what makes [`RnsPoly::zero`] (and the arena
    /// paths in `automorphism_eval`/`mul_pointwise`) allocation-free in
    /// steady state; dropping a polynomial normally is always still
    /// correct, just a missed reuse.
    pub fn recycle(self) {
        for limb in self.limbs {
            orion_math::arena::recycle_u64(limb);
        }
        if let Some(s) = self.special {
            orion_math::arena::recycle_u64(s);
        }
    }

    /// Current level ℓ (= number of limbs − 1).
    pub fn level(&self) -> usize {
        self.limbs.len() - 1
    }

    /// Whether the special limb is present.
    pub fn has_special(&self) -> bool {
        self.special.is_some()
    }

    /// Builds a polynomial from signed coefficients (reduced per modulus).
    pub fn from_signed(ctx: &Context, coeffs: &[i128], level: usize, with_special: bool) -> Self {
        let n = ctx.degree();
        assert_eq!(coeffs.len(), n);
        let limbs = (0..=level)
            .map(|j| {
                let q = ctx.moduli[j];
                coeffs.iter().map(|&c| reduce_i128(c, q)).collect()
            })
            .collect();
        let special = with_special.then(|| {
            let p = ctx.special;
            coeffs.iter().map(|&c| reduce_i128(c, p)).collect()
        });
        Self {
            limbs,
            special,
            form: Form::Coeff,
        }
    }

    /// Samples every limb uniformly (already valid in either form; we tag
    /// the requested one).
    pub fn sample_uniform<R: Rng>(
        ctx: &Context,
        level: usize,
        form: Form,
        with_special: bool,
        rng: &mut R,
    ) -> Self {
        let n = ctx.degree();
        let limbs = (0..=level)
            .map(|j| {
                let q = ctx.moduli[j];
                (0..n).map(|_| rng.gen_range(0..q)).collect()
            })
            .collect();
        let special = with_special.then(|| {
            let p = ctx.special;
            (0..n).map(|_| rng.gen_range(0..p)).collect()
        });
        Self {
            limbs,
            special,
            form,
        }
    }

    /// Samples a ternary polynomial (coefficients in {−1, 0, 1}) in
    /// coefficient form, replicated across all limbs.
    pub fn sample_ternary<R: Rng>(
        ctx: &Context,
        level: usize,
        with_special: bool,
        rng: &mut R,
    ) -> Self {
        let n = ctx.degree();
        let signed: Vec<i128> = (0..n).map(|_| rng.gen_range(-1i128..=1)).collect();
        Self::from_signed(ctx, &signed, level, with_special)
    }

    /// Samples a rounded-Gaussian error polynomial (σ from the params).
    pub fn sample_gaussian<R: Rng>(
        ctx: &Context,
        level: usize,
        with_special: bool,
        rng: &mut R,
    ) -> Self {
        let n = ctx.degree();
        let sigma = ctx.params.sigma;
        let signed: Vec<i128> = (0..n)
            .map(|_| {
                // Box–Muller
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (g * sigma).round() as i128
            })
            .collect();
        Self::from_signed(ctx, &signed, level, with_special)
    }

    /// Collects one `(table, limb)` NTT job per limb (special included).
    fn ntt_jobs<'a>(
        &'a mut self,
        ctx: &'a Context,
    ) -> Vec<(&'a orion_math::NttTable, &'a mut [u64])> {
        let mut pairs: Vec<(&orion_math::NttTable, &mut [u64])> = self
            .limbs
            .iter_mut()
            .enumerate()
            .map(|(j, limb)| (&ctx.ntt[j], &mut limb[..]))
            .collect();
        if let Some(s) = &mut self.special {
            pairs.push((&ctx.ntt_special, &mut s[..]));
        }
        pairs
    }

    /// Converts all limbs to evaluation form (no-op if already there).
    /// Limbs transform independently, so the batch fans out on the shared
    /// rayon pool for large rings.
    pub fn to_eval(&mut self, ctx: &Context) {
        if self.form == Form::Eval {
            return;
        }
        ntt_forward_batch(self.ntt_jobs(ctx));
        self.form = Form::Eval;
    }

    /// Converts all limbs to coefficient form (no-op if already there).
    pub fn to_coeff(&mut self, ctx: &Context) {
        if self.form == Form::Coeff {
            return;
        }
        ntt_inverse_batch(self.ntt_jobs(ctx));
        self.form = Form::Coeff;
    }

    fn check_compat(&self, other: &Self) {
        assert_eq!(self.form, other.form, "form mismatch");
        assert_eq!(self.limbs.len(), other.limbs.len(), "level mismatch");
        assert_eq!(
            self.has_special(),
            other.has_special(),
            "special-limb mismatch"
        );
    }

    /// Whether this polynomial's pointwise limb loops should fan out.
    fn pointwise_par(&self) -> bool {
        let degree = self.limbs.first().map(Vec::len).unwrap_or(0);
        pointwise_parallel(degree, self.limbs.len() + usize::from(self.has_special()))
    }

    /// Runs `op(modulus, dst_limb, j)` over every limb (special included,
    /// with `j = limbs.len()`), fanning out on the shared pool for large
    /// polynomials.
    fn for_each_limb_mut(&mut self, ctx: &Context, op: impl Fn(u64, &mut [u64], usize) + Sync) {
        let par = self.pointwise_par();
        let n_chain = self.limbs.len();
        let mut jobs: Vec<(u64, &mut Vec<u64>)> = self
            .limbs
            .iter_mut()
            .enumerate()
            .map(|(j, limb)| (ctx.moduli[j], limb))
            .collect();
        if let Some(s) = &mut self.special {
            jobs.push((ctx.special, s));
        }
        orion_math::parallel::for_each_mut(&mut jobs, par, |j, (q, limb)| {
            op(*q, limb, j.min(n_chain))
        });
    }

    /// `self += other` (limbwise).
    pub fn add_assign(&mut self, other: &Self, ctx: &Context) {
        self.check_compat(other);
        let n_chain = self.limbs.len();
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            self.for_each_limb_mut(ctx, |q, a, j| {
                let b = if j < n_chain {
                    &other.limbs[j]
                } else {
                    other.special.as_ref().unwrap()
                };
                (k.add_assign)(a, b, q);
            });
        });
    }

    /// `self -= other` (limbwise).
    pub fn sub_assign(&mut self, other: &Self, ctx: &Context) {
        self.check_compat(other);
        let n_chain = self.limbs.len();
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            self.for_each_limb_mut(ctx, |q, a, j| {
                let b = if j < n_chain {
                    &other.limbs[j]
                } else {
                    other.special.as_ref().unwrap()
                };
                (k.sub_assign)(a, b, q);
            });
        });
    }

    /// Negates in place.
    pub fn neg_assign(&mut self, ctx: &Context) {
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            self.for_each_limb_mut(ctx, |q, a, _| {
                (k.neg_assign)(a, q);
            });
        });
    }

    /// Pointwise product (both operands must be in evaluation form).
    pub fn mul_pointwise(&self, other: &Self, ctx: &Context) -> Self {
        assert_eq!(self.form, Form::Eval);
        self.check_compat(other);
        let par = self.pointwise_par();
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            let product = |a: &[u64], b: &[u64], q: u64| -> Vec<u64> {
                let mut out = orion_math::arena::take_u64_raw(a.len());
                (k.mul_pointwise)(&mut out, a, b, q);
                out
            };
            let limbs = map_indexed(self.limbs.len(), par, |j| {
                product(&self.limbs[j], &other.limbs[j], ctx.moduli[j])
            });
            let special = match (&self.special, &other.special) {
                (Some(a), Some(b)) => Some(product(a, b, ctx.special)),
                _ => None,
            };
            Self {
                limbs,
                special,
                form: Form::Eval,
            }
        })
    }

    /// Fused `self += a ⊙ b` where `b` is given as borrowed limb slices —
    /// the key-switch inner loop, which multiplies a digit by a full-basis
    /// key part truncated to the digit's level. Borrowing the key's limbs
    /// directly avoids cloning `level+2` limb vectors per digit.
    pub fn add_mul_assign_parts(
        &mut self,
        a: &Self,
        b_limbs: &[Vec<u64>],
        b_special: Option<&Vec<u64>>,
        ctx: &Context,
    ) {
        assert_eq!(self.form, Form::Eval);
        assert_eq!(a.form, Form::Eval);
        assert_eq!(self.limbs.len(), a.limbs.len());
        assert!(b_limbs.len() >= self.limbs.len());
        let n_chain = self.limbs.len();
        let has_special = self.has_special() && a.has_special() && b_special.is_some();
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            self.for_each_limb_mut(ctx, |q, dst, j| {
                let (x, y) = if j < n_chain {
                    (&a.limbs[j], &b_limbs[j])
                } else if has_special {
                    (a.special.as_ref().unwrap(), b_special.unwrap())
                } else {
                    return;
                };
                (k.add_mul)(dst, x, y, q);
            });
        });
    }

    /// Fused `self += a ⊙ b` (all evaluation form).
    pub fn add_mul_assign(&mut self, a: &Self, b: &Self, ctx: &Context) {
        assert_eq!(self.form, Form::Eval);
        a.check_compat(b);
        assert_eq!(self.limbs.len(), a.limbs.len());
        let n_chain = self.limbs.len();
        let has_special = self.has_special() && a.has_special() && b.has_special();
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            self.for_each_limb_mut(ctx, |q, dst, j| {
                let (x, y) = if j < n_chain {
                    (&a.limbs[j], &b.limbs[j])
                } else if has_special {
                    (a.special.as_ref().unwrap(), b.special.as_ref().unwrap())
                } else {
                    return;
                };
                (k.add_mul)(dst, x, y, q);
            });
        });
    }

    /// Multiplies every limb by a per-limb scalar (`scalars[j]` mod `q_j`,
    /// last entry for the special limb if present). The per-limb residue is
    /// fixed, so each limb runs on a vectorized Shoup multiply (one
    /// precompute division per limb, amortized over the degree).
    pub fn mul_scalar_assign(&mut self, scalar: i128, ctx: &Context) {
        let k = simd::kernels();
        time_class(OpClass::Pointwise, || {
            self.for_each_limb_mut(ctx, |q, a, _| {
                let s = reduce_i128(scalar, q);
                let s_sh = shoup_precompute(s, q);
                (k.scalar_mul_assign)(a, s, s_sh, q);
            });
        });
    }

    /// Applies the Galois automorphism `a(X) → a(X^g)` in coefficient form.
    pub fn automorphism_coeff(&self, g: usize, ctx: &Context) -> Self {
        assert_eq!(self.form, Form::Coeff);
        let n = ctx.degree();
        let m = 2 * n;
        let map: Vec<(usize, bool)> = (0..n)
            .map(|j| {
                let t = (j * g) % m;
                if t < n {
                    (t, false)
                } else {
                    (t - n, true)
                }
            })
            .collect();
        let mut out = self.clone();
        for (jq, (src, dst)) in self.limbs.iter().zip(&mut out.limbs).enumerate() {
            let q = ctx.moduli[jq];
            for (j, &(t, negate)) in map.iter().enumerate() {
                dst[t] = if negate { neg_mod(src[j], q) } else { src[j] };
            }
        }
        if let (Some(src), Some(dst)) = (&self.special, &mut out.special) {
            let p = ctx.special;
            for (j, &(t, negate)) in map.iter().enumerate() {
                dst[t] = if negate { neg_mod(src[j], p) } else { src[j] };
            }
        }
        out
    }

    /// Applies a Galois automorphism in evaluation form via the context's
    /// permutation table: `out[i] = in[perm[i]]` in every limb.
    pub fn automorphism_eval(&self, perm: &[usize]) -> Self {
        assert_eq!(self.form, Form::Eval);
        let apply = |src: &Vec<u64>| -> Vec<u64> {
            let mut out = orion_math::arena::take_u64_raw(src.len());
            for (o, &j) in out.iter_mut().zip(perm) {
                *o = src[j];
            }
            out
        };
        let limbs = map_indexed(self.limbs.len(), self.pointwise_par(), |j| {
            apply(&self.limbs[j])
        });
        Self {
            limbs,
            special: self.special.as_ref().map(apply),
            form: Form::Eval,
        }
    }

    /// Divides by the top chain modulus and drops it (the CKKS rescale on
    /// one polynomial; paper §2.5.2). Works in evaluation form.
    pub fn rescale_assign(&mut self, ctx: &Context) {
        assert!(self.level() >= 1, "cannot rescale at level 0");
        assert!(self.special.is_none(), "ModDown the special limb first");
        assert_eq!(self.form, Form::Eval);
        let l = self.level();
        let ql = ctx.moduli[l];
        // Bring the top limb to coefficient form.
        let mut top = self.limbs.pop().expect("top limb");
        ctx.ntt[l].inverse_lazy(&mut top);
        // Every remaining limb centers-and-reduces the shared top limb
        // directly (no i128 materialization) into a reused per-worker
        // buffer, then folds it in after one forward NTT. The loop fans
        // out for large rings.
        let degree = top.len();
        let k = simd::kernels();
        let top_ref = &top;
        let par = ntt_parallel(degree, l);
        orion_math::parallel::for_each_mut_scratch(
            &mut self.limbs,
            par,
            || orion_math::arena::scratch_u64_raw(degree),
            |j, limb, lifted| {
                let qj = ctx.moduli[j];
                let inv = ctx.rescale_constant(l, j);
                (k.centered_reduce)(lifted, top_ref, ql, qj);
                ctx.ntt[j].forward_lazy(lifted);
                (k.sub_mul_assign)(limb, lifted, inv, shoup_precompute(inv, qj), qj);
            },
        );
        orion_math::arena::recycle_u64(top);
    }

    /// Rescale fused with a level drop: divides by the *top* chain modulus
    /// and keeps only limbs `0..=out_level`. Because the rescale fold is
    /// per-limb independent (each kept limb only reads the shared centered
    /// lift of the popped top limb), truncating *before* the fold yields
    /// bit-identical kept limbs to `rescale_assign()` followed by
    /// `drop_to_level(out_level)` — the intermediate limbs between
    /// `out_level` and `level−1` are never NTT'd or folded at all. The
    /// divisor stays `q_level`, so scale bookkeeping is unchanged.
    pub fn rescale_to_level_assign(&mut self, ctx: &Context, out_level: usize) {
        assert!(self.level() >= 1, "cannot rescale at level 0");
        assert!(
            out_level < self.level(),
            "rescale_to_level must lower the level"
        );
        assert!(self.special.is_none(), "ModDown the special limb first");
        assert_eq!(self.form, Form::Eval);
        let l = self.level();
        let ql = ctx.moduli[l];
        let mut top = self.limbs.pop().expect("top limb");
        ctx.ntt[l].inverse_lazy(&mut top);
        let degree = top.len();
        // The fusion: dead limbs go straight back to the arena before the
        // fold loop ever touches them.
        for dead in self.limbs.drain(out_level + 1..) {
            orion_math::arena::recycle_u64(dead);
        }
        let k = simd::kernels();
        let top_ref = &top;
        let par = ntt_parallel(degree, out_level);
        orion_math::parallel::for_each_mut_scratch(
            &mut self.limbs,
            par,
            || orion_math::arena::scratch_u64_raw(degree),
            |j, limb, lifted| {
                let qj = ctx.moduli[j];
                let inv = ctx.rescale_constant(l, j);
                (k.centered_reduce)(lifted, top_ref, ql, qj);
                ctx.ntt[j].forward_lazy(lifted);
                (k.sub_mul_assign)(limb, lifted, inv, shoup_precompute(inv, qj), qj);
            },
        );
        orion_math::arena::recycle_u64(top);
    }

    /// Removes the special limb, dividing the polynomial by `p` with
    /// rounding (the ModDown step after key-switching).
    pub fn mod_down_special_assign(&mut self, ctx: &Context) {
        assert_eq!(self.form, Form::Eval);
        let p = ctx.special;
        let mut sp = self.special.take().expect("no special limb to remove");
        ctx.ntt_special.inverse_lazy(&mut sp);
        // As in `rescale_assign`: each limb centers-and-reduces the shared
        // special limb directly, through one reused per-worker buffer.
        let degree = sp.len();
        let k = simd::kernels();
        let sp_ref = &sp;
        let par = ntt_parallel(degree, self.limbs.len());
        orion_math::parallel::for_each_mut_scratch(
            &mut self.limbs,
            par,
            || orion_math::arena::scratch_u64_raw(degree),
            |j, limb, lifted| {
                let qj = ctx.moduli[j];
                let inv = ctx.special_constant(j);
                (k.centered_reduce)(lifted, sp_ref, p, qj);
                ctx.ntt[j].forward_lazy(lifted);
                (k.sub_mul_assign)(limb, lifted, inv, shoup_precompute(inv, qj), qj);
            },
        );
        orion_math::arena::recycle_u64(sp);
    }

    /// Drops limbs above `level` (a free level drop — no scaling).
    pub fn drop_to_level(&mut self, level: usize) {
        assert!(level <= self.level());
        self.limbs.truncate(level + 1);
    }

    /// Centered coefficient reconstruction of limb contents via 1–2 limb
    /// CRT. Only meaningful in coefficient form; used by decryption and
    /// tests.
    pub fn lift_centered(&self, ctx: &Context) -> Vec<i128> {
        assert_eq!(self.form, Form::Coeff);
        let use_limbs = self.limbs.len().min(2);
        let moduli: Vec<u64> = ctx.moduli[..use_limbs].to_vec();
        (0..ctx.degree())
            .map(|k| {
                let residues: Vec<u64> = (0..use_limbs).map(|j| self.limbs[j][k]).collect();
                orion_math::rns::crt_reconstruct_centered(&residues, &moduli)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> std::sync::Arc<Context> {
        Context::new(CkksParams::tiny())
    }

    #[test]
    fn ntt_roundtrip_all_limbs() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let orig = RnsPoly::sample_uniform(&ctx, 3, Form::Coeff, true, &mut rng);
        let mut p = orig.clone();
        p.to_eval(&ctx);
        assert_ne!(p, orig);
        p.to_coeff(&ctx);
        assert_eq!(p, orig);
    }

    #[test]
    fn add_sub_cancel() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let a = RnsPoly::sample_uniform(&ctx, 2, Form::Eval, false, &mut rng);
        let b = RnsPoly::sample_uniform(&ctx, 2, Form::Eval, false, &mut rng);
        let mut c = a.clone();
        c.add_assign(&b, &ctx);
        c.sub_assign(&b, &ctx);
        assert_eq!(c, a);
    }

    #[test]
    fn automorphism_coeff_matches_eval_permutation() {
        // The evaluation-domain permutation must agree with the coefficient
        // definition of a(X) -> a(X^g).
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let g = ctx.galois_element(1);
        let a = RnsPoly::sample_uniform(&ctx, 1, Form::Coeff, false, &mut rng);
        let mut via_coeff = a.automorphism_coeff(g, &ctx);
        via_coeff.to_eval(&ctx);
        let mut ae = a.clone();
        ae.to_eval(&ctx);
        let via_eval = ae.automorphism_eval(&ctx.galois_permutation(g));
        assert_eq!(via_coeff, via_eval);
    }

    #[test]
    fn rescale_divides_by_top_modulus() {
        let ctx = ctx();
        // Construct a poly whose coefficients are exact multiples of q_l.
        let l = 2;
        let ql = ctx.moduli[l] as i128;
        let n = ctx.degree();
        let coeffs: Vec<i128> = (0..n).map(|i| (i as i128 % 17 - 8) * ql).collect();
        let mut p = RnsPoly::from_signed(&ctx, &coeffs, l, false);
        p.to_eval(&ctx);
        p.rescale_assign(&ctx);
        p.to_coeff(&ctx);
        let lifted = p.lift_centered(&ctx);
        for (i, &c) in lifted.iter().enumerate() {
            assert_eq!(c, coeffs[i] / ql, "coeff {i}");
        }
    }

    #[test]
    fn mod_down_special_divides_by_p() {
        let ctx = ctx();
        let p = ctx.special as i128;
        let n = ctx.degree();
        let coeffs: Vec<i128> = (0..n).map(|i| ((i as i128 % 11) - 5) * p).collect();
        let mut poly = RnsPoly::from_signed(&ctx, &coeffs, 1, true);
        poly.to_eval(&ctx);
        poly.mod_down_special_assign(&ctx);
        poly.to_coeff(&ctx);
        let lifted = poly.lift_centered(&ctx);
        for (i, &c) in lifted.iter().enumerate() {
            assert_eq!(c, coeffs[i] / p);
        }
    }

    #[test]
    fn mod_down_rounds_non_multiples() {
        // p*k + r maps to k when |r| < p/2.
        let ctx = ctx();
        let p = ctx.special as i128;
        let n = ctx.degree();
        let coeffs: Vec<i128> = (0..n).map(|i| 7 * p + (i as i128 % 100) - 50).collect();
        let mut poly = RnsPoly::from_signed(&ctx, &coeffs, 0, true);
        poly.to_eval(&ctx);
        poly.mod_down_special_assign(&ctx);
        poly.to_coeff(&ctx);
        for &c in &poly.lift_centered(&ctx) {
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn pointwise_mul_is_negacyclic() {
        // (X^{n/2})^2 = -1
        let ctx = ctx();
        let n = ctx.degree();
        let mut coeffs = vec![0i128; n];
        coeffs[n / 2] = 1;
        let mut a = RnsPoly::from_signed(&ctx, &coeffs, 1, false);
        a.to_eval(&ctx);
        let mut sq = a.mul_pointwise(&a, &ctx);
        sq.to_coeff(&ctx);
        let lifted = sq.lift_centered(&ctx);
        assert_eq!(lifted[0], -1);
        assert!(lifted[1..].iter().all(|&c| c == 0));
    }
}
