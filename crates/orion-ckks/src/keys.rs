//! Key material: secret, public, relinearization, and rotation keys.
//!
//! Key-switching keys use per-limb digit decomposition with one special
//! prime `p` (DESIGN.md §5): the key for re-keying `s' → s` has one part
//! per chain limb `i`, each a pair over the extended basis `{q_0…q_L, p}`
//! encrypting `p·D_i·s'` where `D_i ≡ δ_ij (mod q_j)`.

use crate::params::Context;
use crate::poly::{Form, RnsPoly};
use orion_math::modular::{add_mod, mul_mod};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// The secret key: a ternary polynomial, stored in evaluation form over the
/// full basis (all chain limbs + special).
pub struct SecretKey {
    /// `s` in evaluation form, full basis.
    pub s: RnsPoly,
}

/// The public encryption key `(b, a) = (−a·s + e, a)` at the top level.
pub struct PublicKey {
    /// `−a·s + e`, evaluation form, full chain (no special limb).
    pub b: RnsPoly,
    /// Uniform `a`, evaluation form, full chain.
    pub a: RnsPoly,
}

/// A key-switching key for some `s' → s`: one `(b_i, a_i)` pair per chain
/// limb, each over the extended basis.
pub struct KeySwitchKey {
    /// `parts[i] = (b_i, a_i)` in evaluation form over `{q_0…q_L, p}`.
    pub parts: Vec<(RnsPoly, RnsPoly)>,
}

/// Evaluation keys: relinearization + rotation (+ conjugation) keys.
pub struct EvalKeys {
    /// Key for `s² → s` (used by `HMult`).
    pub relin: KeySwitchKey,
    /// Rotation keys, indexed by Galois element.
    pub rot: HashMap<usize, KeySwitchKey>,
    /// Conjugation key (Galois element `2N−1`), if generated.
    pub conj: Option<KeySwitchKey>,
}

impl EvalKeys {
    /// Looks up the rotation key for Galois element `g`.
    pub fn rotation(&self, g: usize) -> &KeySwitchKey {
        self.rot
            .get(&g)
            .unwrap_or_else(|| panic!("missing rotation key for galois element {g}"))
    }
}

/// Generates all key material from a fresh ternary secret.
pub struct KeyGenerator<R: Rng> {
    ctx: Arc<Context>,
    rng: R,
    sk: Arc<SecretKey>,
}

impl<R: Rng> KeyGenerator<R> {
    /// Samples a fresh secret key.
    pub fn new(ctx: Arc<Context>, mut rng: R) -> Self {
        let max = ctx.max_level();
        let mut s = RnsPoly::sample_ternary(&ctx, max, true, &mut rng);
        s.to_eval(&ctx);
        Self {
            ctx,
            rng,
            sk: Arc::new(SecretKey { s }),
        }
    }

    /// The secret key (shared handle).
    pub fn secret_key(&self) -> Arc<SecretKey> {
        self.sk.clone()
    }

    /// Generates the public key.
    pub fn gen_public_key(&mut self) -> PublicKey {
        let max = self.ctx.max_level();
        let a = RnsPoly::sample_uniform(&self.ctx, max, Form::Eval, false, &mut self.rng);
        let mut e = RnsPoly::sample_gaussian(&self.ctx, max, false, &mut self.rng);
        e.to_eval(&self.ctx);
        // b = -a*s + e
        let mut s_trunc = self.sk.s.clone();
        s_trunc.special = None;
        let mut b = a.mul_pointwise(&s_trunc, &self.ctx);
        b.neg_assign(&self.ctx);
        b.add_assign(&e, &self.ctx);
        PublicKey { b, a }
    }

    /// Generates a key-switching key re-keying `s_from → s` where `s_from`
    /// is given in evaluation form over the full basis.
    pub fn gen_ksw_key(&mut self, s_from: &RnsPoly) -> KeySwitchKey {
        let ctx = &self.ctx;
        let max = ctx.max_level();
        let p = ctx.special;
        let parts = (0..=max)
            .map(|i| {
                let a_i = RnsPoly::sample_uniform(ctx, max, Form::Eval, true, &mut self.rng);
                let mut e_i = RnsPoly::sample_gaussian(ctx, max, true, &mut self.rng);
                e_i.to_eval(ctx);
                // b_i = -a_i*s + e_i + p·D_i·s_from
                let mut b_i = a_i.mul_pointwise(&self.sk.s, ctx);
                b_i.neg_assign(ctx);
                b_i.add_assign(&e_i, ctx);
                // p·D_i ≡ p (mod q_i), ≡ 0 (mod q_j, j≠i), ≡ 0 (mod p):
                // only limb i receives a contribution.
                let qi = ctx.moduli[i];
                let p_mod = p % qi;
                let src = &s_from.limbs[i];
                let dst = &mut b_i.limbs[i];
                for (x, &sv) in dst.iter_mut().zip(src) {
                    *x = add_mod(*x, mul_mod(p_mod, sv, qi), qi);
                }
                (b_i, a_i)
            })
            .collect();
        KeySwitchKey { parts }
    }

    /// Generates the relinearization key (`s² → s`).
    pub fn gen_relin_key(&mut self) -> KeySwitchKey {
        let s2 = self.sk.s.mul_pointwise(&self.sk.s, &self.ctx);
        self.gen_ksw_key(&s2)
    }

    /// Generates the rotation key for a slot rotation by `k`.
    pub fn gen_rotation_key(&mut self, k: isize) -> (usize, KeySwitchKey) {
        let g = self.ctx.galois_element(k);
        let perm = self.ctx.galois_permutation(g);
        let s_rot = self.sk.s.automorphism_eval(&perm);
        (g, self.gen_ksw_key(&s_rot))
    }

    /// Generates the conjugation key.
    pub fn gen_conjugation_key(&mut self) -> KeySwitchKey {
        let g = self.ctx.galois_element_conj();
        let perm = self.ctx.galois_permutation(g);
        let s_conj = self.sk.s.automorphism_eval(&perm);
        self.gen_ksw_key(&s_conj)
    }

    /// Generates the full evaluation-key set for the given rotation steps.
    pub fn gen_eval_keys(&mut self, rotations: &[isize]) -> EvalKeys {
        let relin = self.gen_relin_key();
        let mut rot = HashMap::new();
        for &k in rotations {
            if k == 0 {
                continue;
            }
            let (g, key) = self.gen_rotation_key(k);
            rot.insert(g, key);
        }
        EvalKeys {
            relin,
            rot,
            conj: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn public_key_decrypts_to_small_error() {
        // b + a*s = e must be small.
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(7));
        let pk = kg.gen_public_key();
        let sk = kg.secret_key();
        let mut s = sk.s.clone();
        s.special = None;
        let mut chk = pk.a.mul_pointwise(&s, &ctx);
        chk.add_assign(&pk.b, &ctx);
        chk.to_coeff(&ctx);
        let lifted = chk.lift_centered(&ctx);
        let max = lifted.iter().map(|x| x.unsigned_abs()).max().unwrap();
        assert!(
            max < (ctx.params.sigma * 8.0) as u128 + 1,
            "pk error too large: {max}"
        );
    }

    #[test]
    fn eval_keys_indexable_by_galois_element() {
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(8));
        let keys = kg.gen_eval_keys(&[1, -1, 4]);
        assert!(keys.rot.contains_key(&ctx.galois_element(1)));
        assert!(keys.rot.contains_key(&ctx.galois_element(-1)));
        assert!(keys.rot.contains_key(&ctx.galois_element(4)));
        assert_eq!(keys.relin.parts.len(), ctx.max_level() + 1);
    }
}
