//! Key material: secret, public, relinearization, and rotation keys.
//!
//! Key-switching keys use per-limb digit decomposition with one special
//! prime `p` (DESIGN.md §5): the key for re-keying `s' → s` has one part
//! per chain limb `i`, each a pair over the extended basis `{q_0…q_L, p}`
//! encrypting `p·D_i·s'` where `D_i ≡ δ_ij (mod q_j)`.

use crate::params::Context;
use crate::poly::{Form, RnsPoly};
use orion_math::modular::{add_mod, mul_mod, shoup_precompute};
use orion_math::parallel::pointwise_parallel;
use orion_math::simd;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// The secret key: a ternary polynomial, stored in evaluation form over the
/// full basis (all chain limbs + special).
pub struct SecretKey {
    /// `s` in evaluation form, full basis.
    pub s: RnsPoly,
}

/// The public encryption key `(b, a) = (−a·s + e, a)` at the top level.
pub struct PublicKey {
    /// `−a·s + e`, evaluation form, full chain (no special limb).
    pub b: RnsPoly,
    /// Uniform `a`, evaluation form, full chain.
    pub a: RnsPoly,
}

/// A key-switching key for some `s' → s`: one `(b_i, a_i)` pair per chain
/// limb, each over the extended basis.
pub struct KeySwitchKey {
    /// `parts[i] = (b_i, a_i)` in evaluation form over `{q_0…q_L, p}`.
    pub parts: Vec<(RnsPoly, RnsPoly)>,
    /// Element-wise Shoup constants for every limb of every part, computed
    /// once at keygen. Key limbs are the *fixed* operand of the key-switch
    /// inner product, so the fused accumulation kernel can run on lazy
    /// Shoup products instead of 128-bit divisions.
    pub parts_shoup: Vec<(RnsPoly, RnsPoly)>,
}

impl KeySwitchKey {
    /// Builds the Shoup tables for freshly generated parts.
    fn with_shoup(ctx: &Context, parts: Vec<(RnsPoly, RnsPoly)>) -> Self {
        let shoup_poly = |p: &RnsPoly| -> RnsPoly {
            let precompute = |limb: &Vec<u64>, q: u64| -> Vec<u64> {
                limb.iter().map(|&x| shoup_precompute(x, q)).collect()
            };
            RnsPoly {
                limbs: p
                    .limbs
                    .iter()
                    .enumerate()
                    .map(|(j, limb)| precompute(limb, ctx.moduli[j]))
                    .collect(),
                special: p.special.as_ref().map(|s| precompute(s, ctx.special)),
                form: Form::Eval,
            }
        };
        let parts_shoup = parts
            .iter()
            .map(|(b, a)| (shoup_poly(b), shoup_poly(a)))
            .collect();
        Self { parts, parts_shoup }
    }

    /// Fused key-switch inner product: accumulates `Σ_i digits[i] ⊙
    /// parts[i]` into `(acc_b, acc_a)` over every limb (special included),
    /// keeping the per-element accumulator in lazy `[0, 2q)` form across
    /// *all* gadget digits and fully reducing once per element — the
    /// per-digit reduction sweeps of the unfused loop disappear. The
    /// accumulators must be in evaluation form, `[0, q)`, at the digits'
    /// level, with special limbs.
    pub fn accumulate_inner_product(
        &self,
        ctx: &Context,
        digits: &[RnsPoly],
        acc_b: &mut RnsPoly,
        acc_a: &mut RnsPoly,
    ) {
        let d = digits.len();
        assert!(d <= self.parts.len(), "more digits than key parts");
        assert!(d > 0, "empty digit decomposition");
        let n_chain = acc_b.limbs.len();
        assert_eq!(acc_a.limbs.len(), n_chain);
        let k = simd::kernels();
        // One job per (part, limb): 2·(level+2) fused accumulations, each
        // walking all digits. Fans out on the shared pool like the rest of
        // the pointwise layer.
        let degree = ctx.degree();
        let par = pointwise_parallel(degree, 2 * (n_chain + 1));
        let mut jobs: Vec<(u64, usize, bool, &mut Vec<u64>)> = Vec::with_capacity(2 * n_chain + 2);
        for (which, acc) in [(true, &mut *acc_b), (false, &mut *acc_a)] {
            for (j, limb) in acc.limbs.iter_mut().enumerate() {
                jobs.push((ctx.moduli[j], j, which, limb));
            }
            if let Some(s) = acc.special.as_mut() {
                jobs.push((ctx.special, n_chain, which, s));
            }
        }
        orion_math::parallel::for_each_mut(&mut jobs, par, |_, (q, j, is_b, dst)| {
            let mut ds: Vec<&[u64]> = Vec::with_capacity(d);
            let mut ks: Vec<&[u64]> = Vec::with_capacity(d);
            let mut kss: Vec<&[u64]> = Vec::with_capacity(d);
            for i in 0..d {
                let (part, part_sh) = if *is_b {
                    (&self.parts[i].0, &self.parts_shoup[i].0)
                } else {
                    (&self.parts[i].1, &self.parts_shoup[i].1)
                };
                let (dig, key, key_sh) = if *j < n_chain {
                    (&digits[i].limbs[*j], &part.limbs[*j], &part_sh.limbs[*j])
                } else {
                    (
                        digits[i].special.as_ref().expect("digit special limb"),
                        part.special.as_ref().expect("key special limb"),
                        part_sh.special.as_ref().expect("key shoup special limb"),
                    )
                };
                ds.push(dig);
                ks.push(key);
                kss.push(key_sh);
            }
            (k.ks_accum)(dst, &ds, &ks, &kss, *q);
        });
    }

    /// Fused inner product into fresh zero accumulators: returns `(b, a)`
    /// at the digits' level, evaluation form, with special limbs.
    pub fn inner_product(&self, ctx: &Context, digits: &[RnsPoly]) -> (RnsPoly, RnsPoly) {
        let level = digits[0].limbs.len() - 1;
        let mut acc_b = RnsPoly::zero(ctx, level, Form::Eval, true);
        let mut acc_a = RnsPoly::zero(ctx, level, Form::Eval, true);
        self.accumulate_inner_product(ctx, digits, &mut acc_b, &mut acc_a);
        (acc_b, acc_a)
    }
}

/// Evaluation keys: relinearization + rotation (+ conjugation) keys.
pub struct EvalKeys {
    /// Key for `s² → s` (used by `HMult`).
    pub relin: KeySwitchKey,
    /// Rotation keys, indexed by Galois element.
    pub rot: HashMap<usize, KeySwitchKey>,
    /// Conjugation key (Galois element `2N−1`), if generated.
    pub conj: Option<KeySwitchKey>,
}

/// A rotation was requested whose Galois element has no generated key.
///
/// Statically unreachable on certified programs: the `orion_nn::verify`
/// key-coverage pass enumerates every Galois element a plan touches
/// (BSGS baby/giant steps, optimizer shared-rotation units) and checks it
/// against keygen before any ciphertext math runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissingRotationKey {
    /// The Galois element that was looked up.
    pub galois: usize,
}

impl std::fmt::Display for MissingRotationKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "missing rotation key for galois element {}", self.galois)
    }
}

impl std::error::Error for MissingRotationKey {}

impl EvalKeys {
    /// Looks up the rotation key for Galois element `g`, with a typed
    /// error on a miss.
    pub fn try_rotation(&self, g: usize) -> Result<&KeySwitchKey, MissingRotationKey> {
        self.rot.get(&g).ok_or(MissingRotationKey { galois: g })
    }

    /// Looks up the rotation key for Galois element `g`.
    ///
    /// Panics on a miss. The static verifier's key-coverage pass makes a
    /// miss unreachable for any certified plan — the `debug_assert`
    /// documents that contract; fallible callers use [`Self::try_rotation`].
    pub fn rotation(&self, g: usize) -> &KeySwitchKey {
        debug_assert!(
            self.rot.contains_key(&g),
            "rotation key miss for galois element {g} — the plan was not verified \
             (orion_nn::verify key-coverage would have rejected it pre-flight)"
        );
        match self.try_rotation(g) {
            Ok(key) => key,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Generates all key material from a fresh ternary secret.
pub struct KeyGenerator<R: Rng> {
    ctx: Arc<Context>,
    rng: R,
    sk: Arc<SecretKey>,
}

impl<R: Rng> KeyGenerator<R> {
    /// Samples a fresh secret key.
    pub fn new(ctx: Arc<Context>, mut rng: R) -> Self {
        let max = ctx.max_level();
        let mut s = RnsPoly::sample_ternary(&ctx, max, true, &mut rng);
        s.to_eval(&ctx);
        Self {
            ctx,
            rng,
            sk: Arc::new(SecretKey { s }),
        }
    }

    /// The secret key (shared handle).
    pub fn secret_key(&self) -> Arc<SecretKey> {
        self.sk.clone()
    }

    /// Generates the public key.
    pub fn gen_public_key(&mut self) -> PublicKey {
        let max = self.ctx.max_level();
        let a = RnsPoly::sample_uniform(&self.ctx, max, Form::Eval, false, &mut self.rng);
        let mut e = RnsPoly::sample_gaussian(&self.ctx, max, false, &mut self.rng);
        e.to_eval(&self.ctx);
        // b = -a*s + e
        let mut s_trunc = self.sk.s.clone();
        s_trunc.special = None;
        let mut b = a.mul_pointwise(&s_trunc, &self.ctx);
        b.neg_assign(&self.ctx);
        b.add_assign(&e, &self.ctx);
        PublicKey { b, a }
    }

    /// Generates a key-switching key re-keying `s_from → s` where `s_from`
    /// is given in evaluation form over the full basis.
    pub fn gen_ksw_key(&mut self, s_from: &RnsPoly) -> KeySwitchKey {
        let ctx = &self.ctx;
        let max = ctx.max_level();
        let p = ctx.special;
        let parts = (0..=max)
            .map(|i| {
                let a_i = RnsPoly::sample_uniform(ctx, max, Form::Eval, true, &mut self.rng);
                let mut e_i = RnsPoly::sample_gaussian(ctx, max, true, &mut self.rng);
                e_i.to_eval(ctx);
                // b_i = -a_i*s + e_i + p·D_i·s_from
                let mut b_i = a_i.mul_pointwise(&self.sk.s, ctx);
                b_i.neg_assign(ctx);
                b_i.add_assign(&e_i, ctx);
                // p·D_i ≡ p (mod q_i), ≡ 0 (mod q_j, j≠i), ≡ 0 (mod p):
                // only limb i receives a contribution.
                let qi = ctx.moduli[i];
                let p_mod = p % qi;
                let src = &s_from.limbs[i];
                let dst = &mut b_i.limbs[i];
                for (x, &sv) in dst.iter_mut().zip(src) {
                    *x = add_mod(*x, mul_mod(p_mod, sv, qi), qi);
                }
                (b_i, a_i)
            })
            .collect();
        KeySwitchKey::with_shoup(ctx, parts)
    }

    /// Generates the relinearization key (`s² → s`).
    pub fn gen_relin_key(&mut self) -> KeySwitchKey {
        let s2 = self.sk.s.mul_pointwise(&self.sk.s, &self.ctx);
        self.gen_ksw_key(&s2)
    }

    /// Generates the rotation key for a slot rotation by `k`.
    pub fn gen_rotation_key(&mut self, k: isize) -> (usize, KeySwitchKey) {
        let g = self.ctx.galois_element(k);
        let perm = self.ctx.galois_permutation(g);
        let s_rot = self.sk.s.automorphism_eval(&perm);
        (g, self.gen_ksw_key(&s_rot))
    }

    /// Generates the conjugation key.
    pub fn gen_conjugation_key(&mut self) -> KeySwitchKey {
        let g = self.ctx.galois_element_conj();
        let perm = self.ctx.galois_permutation(g);
        let s_conj = self.sk.s.automorphism_eval(&perm);
        self.gen_ksw_key(&s_conj)
    }

    /// Generates the full evaluation-key set for the given rotation steps.
    pub fn gen_eval_keys(&mut self, rotations: &[isize]) -> EvalKeys {
        let relin = self.gen_relin_key();
        let mut rot = HashMap::new();
        for &k in rotations {
            if k == 0 {
                continue;
            }
            let (g, key) = self.gen_rotation_key(k);
            rot.insert(g, key);
        }
        EvalKeys {
            relin,
            rot,
            conj: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn public_key_decrypts_to_small_error() {
        // b + a*s = e must be small.
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(7));
        let pk = kg.gen_public_key();
        let sk = kg.secret_key();
        let mut s = sk.s.clone();
        s.special = None;
        let mut chk = pk.a.mul_pointwise(&s, &ctx);
        chk.add_assign(&pk.b, &ctx);
        chk.to_coeff(&ctx);
        let lifted = chk.lift_centered(&ctx);
        let max = lifted.iter().map(|x| x.unsigned_abs()).max().unwrap();
        assert!(
            max < (ctx.params.sigma * 8.0) as u128 + 1,
            "pk error too large: {max}"
        );
    }

    #[test]
    fn eval_keys_indexable_by_galois_element() {
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(8));
        let keys = kg.gen_eval_keys(&[1, -1, 4]);
        assert!(keys.rot.contains_key(&ctx.galois_element(1)));
        assert!(keys.rot.contains_key(&ctx.galois_element(-1)));
        assert!(keys.rot.contains_key(&ctx.galois_element(4)));
        assert_eq!(keys.relin.parts.len(), ctx.max_level() + 1);
    }
}
