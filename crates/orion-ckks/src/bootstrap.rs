//! The bootstrap substitute (see DESIGN.md §2).
//!
//! The paper's backend (Lattigo) implements full CKKS bootstrapping —
//! ModRaise, CoeffToSlot, EvalMod, SlotToCoeff — consuming `L_boot ≈ 13–15`
//! levels and dominating runtime (paper Figure 1c). Orion the *compiler*
//! only interacts with bootstrapping through three facts:
//!
//! 1. a ciphertext at any level is refreshed to `L_eff = L − L_boot`,
//! 2. the operation costs `latency(L_eff)` (superlinear — Figure 1c),
//! 3. the refreshed ciphertext loses a bounded amount of precision.
//!
//! [`BootstrapOracle`] preserves all three: it holds the secret key (as a
//! client-side oracle), decrypts, injects bootstrap-magnitude noise,
//! re-encrypts at `L_eff`, and tallies the op in its counter. Latency is
//! supplied by `orion-sim`'s cost model, which the placement algorithm uses
//! exactly as the paper does (§5.2 "we estimate the latencies … with an
//! analytical model").

use crate::encoder::Encoder;
use crate::encrypt::{Ciphertext, Decryptor, Encryptor};
use crate::keys::SecretKey;
use crate::params::Context;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Level-reset oracle standing in for true CKKS bootstrapping.
///
/// `refresh` is a **pure function** of the input ciphertext: the noise and
/// re-encryption randomness are drawn from an RNG seeded by hashing the
/// ciphertext's limbs with the oracle's base seed. Refreshing the same
/// ciphertext always yields the same result, no matter which thread does
/// it or in what order — the property the wire-level parallel scheduler
/// needs (bootstraps of independent ciphertexts run concurrently, and
/// scheduler order must not change results), and what makes
/// bootstrap-deep models serve bit-reproducibly.
pub struct BootstrapOracle {
    ctx: Arc<Context>,
    encoder: Encoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    seed: u64,
    /// Relative precision of the simulated bootstrap (bits); real
    /// high-precision CKKS bootstraps land around 20–30 bits.
    pub precision_bits: f64,
    count: std::sync::atomic::AtomicU64,
}

impl BootstrapOracle {
    /// Creates the oracle from the secret key.
    pub fn new(ctx: Arc<Context>, sk: Arc<SecretKey>) -> Self {
        Self {
            encoder: Encoder::new(ctx.clone()),
            encryptor: Encryptor::with_secret_key(ctx.clone(), sk.clone()),
            decryptor: Decryptor::new(ctx.clone(), sk),
            ctx,
            seed: 0x0b007,
            precision_bits: 24.0,
            count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// FNV-1a over the ciphertext's content — the per-refresh RNG seed, so
    /// identical inputs refresh identically (determinism, not security:
    /// the oracle already holds the secret key).
    fn ct_seed(&self, ct: &Ciphertext) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.seed);
        mix(ct.scale.to_bits());
        for poly in [&ct.c0, &ct.c1] {
            for limb in &poly.limbs {
                for &v in limb {
                    mix(v);
                }
            }
        }
        h
    }

    /// Refreshes `ct` to level `L_eff` at scale Δ, adding
    /// bootstrap-magnitude noise. The input may be at any level (normally
    /// 0 or close to it).
    ///
    /// Like real bootstrapping, the slot values are assumed to lie within
    /// the EvalMod range (|x| ≲ 1 after Orion's range estimation); values
    /// far outside would decode incorrectly in a real bootstrap, so the
    /// oracle does **not** clamp them — range bugs stay observable.
    pub fn refresh(&self, ct: &Ciphertext) -> Ciphertext {
        orion_telemetry::time_class(orion_telemetry::OpClass::Bootstrap, || {
            self.refresh_impl(ct)
        })
    }

    fn refresh_impl(&self, ct: &Ciphertext) -> Ciphertext {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let vals = self.encoder.decode_complex(&self.decryptor.decrypt(ct));
        let sigma = (-self.precision_bits).exp2();
        let mut rng = StdRng::seed_from_u64(self.ct_seed(ct));
        let noisy: Vec<orion_math::fft::Complex> = vals
            .iter()
            .map(|v| {
                let n1: f64 = rng.gen::<f64>() - 0.5;
                let n2: f64 = rng.gen::<f64>() - 0.5;
                orion_math::fft::Complex::new(v.re + n1 * sigma, v.im + n2 * sigma)
            })
            .collect();
        let level = self.ctx.params.effective_level();
        let pt = self
            .encoder
            .encode_complex(&noisy, self.ctx.scale(), level, false);
        self.encryptor.encrypt(&pt, &mut rng)
    }

    /// Number of refreshes performed so far.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;

    #[test]
    fn refresh_restores_effective_level() {
        let ctx = Context::new(CkksParams::tiny());
        let kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(41));
        let sk = kg.secret_key();
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::with_secret_key(ctx.clone(), sk.clone());
        let oracle = BootstrapOracle::new(ctx.clone(), sk.clone());
        let dec = Decryptor::new(ctx.clone(), sk);
        let mut rng = StdRng::seed_from_u64(42);

        let vals: Vec<f64> = (0..ctx.slots())
            .map(|i| ((i % 8) as f64) / 8.0 - 0.5)
            .collect();
        let ct = encryptor.encrypt(&enc.encode(&vals, ctx.scale(), 0, false), &mut rng);
        assert_eq!(ct.level(), 0);
        let fresh = oracle.refresh(&ct);
        assert_eq!(fresh.level(), ctx.params.effective_level());
        assert_eq!(fresh.scale, ctx.scale());
        assert_eq!(oracle.count(), 1);
        let out = enc.decode(&dec.decrypt(&fresh));
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn refresh_is_a_pure_function_of_the_ciphertext() {
        let ctx = Context::new(CkksParams::tiny());
        let kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(45));
        let sk = kg.secret_key();
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::with_secret_key(ctx.clone(), sk.clone());
        let oracle = BootstrapOracle::new(ctx.clone(), sk);
        let mut rng = StdRng::seed_from_u64(46);
        let vals: Vec<f64> = (0..ctx.slots()).map(|i| (i % 5) as f64 * 0.1).collect();
        let ct = encryptor.encrypt(&enc.encode(&vals, ctx.scale(), 0, false), &mut rng);
        // same input → bit-identical refresh, regardless of call order
        let a = oracle.refresh(&ct);
        let other = encryptor.encrypt(&enc.encode(&vals, ctx.scale(), 1, false), &mut rng);
        let interleaved = oracle.refresh(&other);
        let b = oracle.refresh(&ct);
        assert_eq!(a.c0, b.c0, "refresh must be deterministic per ciphertext");
        assert_eq!(a.c1, b.c1);
        assert_eq!(a.scale, b.scale);
        // distinct inputs draw distinct noise streams
        assert_ne!(a.c0, interleaved.c0);
    }

    #[test]
    fn refresh_noise_is_bounded_by_precision() {
        let ctx = Context::new(CkksParams::tiny());
        let kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(43));
        let sk = kg.secret_key();
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::with_secret_key(ctx.clone(), sk.clone());
        let oracle = BootstrapOracle::new(ctx.clone(), sk.clone());
        let dec = Decryptor::new(ctx.clone(), sk);
        let mut rng = StdRng::seed_from_u64(44);
        let vals = vec![0.25f64; ctx.slots()];
        let ct = encryptor.encrypt(&enc.encode(&vals, ctx.scale(), 1, false), &mut rng);
        let out = enc.decode(&dec.decrypt(&oracle.refresh(&ct)));
        let max_err = out.iter().map(|x| (x - 0.25).abs()).fold(0.0, f64::max);
        // Injected noise (2^-24) plus the tiny-parameter encryption noise
        // floor; the combined error must stay far below working precision.
        assert!(max_err < 1e-3, "refresh error too large: {max_err}");

        // A deliberately low-precision oracle must produce visibly more
        // error, and about the requested magnitude.
        let mut coarse = BootstrapOracle::new(ctx.clone(), kg.secret_key());
        coarse.precision_bits = 8.0;
        let out = enc.decode(&dec.decrypt(&coarse.refresh(&ct)));
        let coarse_err = out.iter().map(|x| (x - 0.25).abs()).fold(0.0, f64::max);
        assert!(coarse_err > max_err, "coarser oracle should be noisier");
        assert!(
            coarse_err < (-6.0f64).exp2(),
            "but still bounded by ~2^-8 half-width"
        );
    }
}
