//! Cleartext ↔ plaintext conversion (paper §2.2).
//!
//! Encoding runs the special inverse FFT on the slot vector, scales by Δ
//! (or, for the errorless weight path, by an arbitrary chosen scale such as
//! `q_j` — paper §6/Figure 7), and rounds to integer polynomial
//! coefficients. Decoding inverts the process.

use crate::encrypt::Plaintext;
use crate::params::Context;
use crate::poly::RnsPoly;
use orion_math::fft::Complex;

/// Encoder/decoder bound to a context.
pub struct Encoder {
    ctx: std::sync::Arc<Context>,
}

impl Encoder {
    /// Creates an encoder for `ctx`.
    pub fn new(ctx: std::sync::Arc<Context>) -> Self {
        Self { ctx }
    }

    /// Encodes a real vector (length ≤ slots; zero-padded) into a plaintext
    /// at `level` with the given `scale`. `with_special` additionally
    /// carries a special-prime limb so the plaintext can multiply
    /// extended-basis accumulators (double-hoisting).
    pub fn encode(
        &self,
        values: &[f64],
        scale: f64,
        level: usize,
        with_special: bool,
    ) -> Plaintext {
        let slots = self.ctx.slots();
        assert!(values.len() <= slots, "too many values for slot count");
        let mut vals = vec![Complex::default(); slots];
        for (v, &x) in vals.iter_mut().zip(values) {
            *v = Complex::new(x, 0.0);
        }
        self.encode_complex(&vals, scale, level, with_special)
    }

    /// Encodes a complex slot vector (must be exactly `slots` long).
    pub fn encode_complex(
        &self,
        slot_vals: &[Complex],
        scale: f64,
        level: usize,
        with_special: bool,
    ) -> Plaintext {
        let slots = self.ctx.slots();
        assert_eq!(slot_vals.len(), slots);
        let mut vals = slot_vals.to_vec();
        self.ctx.fft.inverse(&mut vals);
        let n = self.ctx.degree();
        // The lift temporary comes from the arena: encode-heavy paths
        // (batch weight encoding, per-request input encoding) stop paying
        // an i128 allocation per call.
        let mut coeffs = orion_math::arena::scratch_i128_raw(n);
        for (j, v) in vals.iter().enumerate() {
            coeffs[j] = (v.re * scale).round() as i128;
            coeffs[j + slots] = (v.im * scale).round() as i128;
        }
        let mut poly = RnsPoly::from_signed(&self.ctx, &coeffs, level, with_special);
        poly.to_eval(&self.ctx);
        Plaintext { poly, scale }
    }

    /// Decodes a plaintext back to its real slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<f64> {
        self.decode_complex(pt).into_iter().map(|c| c.re).collect()
    }

    /// Decodes a plaintext to complex slot values.
    pub fn decode_complex(&self, pt: &Plaintext) -> Vec<Complex> {
        let mut poly = pt.poly.clone();
        poly.to_coeff(&self.ctx);
        let coeffs = poly.lift_centered(&self.ctx);
        let slots = self.ctx.slots();
        let inv = 1.0 / pt.scale;
        let mut vals: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(coeffs[j] as f64 * inv, coeffs[j + slots] as f64 * inv))
            .collect();
        self.ctx.fft.forward(&mut vals);
        vals
    }

    /// The context this encoder is bound to.
    pub fn context(&self) -> &std::sync::Arc<Context> {
        &self.ctx
    }

    /// Encodes a scalar constant replicated across all slots.
    ///
    /// Constants are encoded without the FFT (a constant slot vector embeds
    /// as a constant polynomial), which keeps them exact.
    pub fn encode_constant(
        &self,
        value: f64,
        scale: f64,
        level: usize,
        with_special: bool,
    ) -> Plaintext {
        let n = self.ctx.degree();
        let mut coeffs = orion_math::arena::scratch_i128(n);
        coeffs[0] = (value * scale).round() as i128;
        let mut poly = RnsPoly::from_signed(&self.ctx, &coeffs, level, with_special);
        poly.to_eval(&self.ctx);
        Plaintext { poly, scale }
    }

    /// Encodes weights "errorlessly" for consumption at chain index `level`
    /// (paper §6): the plaintext scale is exactly `q_level`, so after
    /// `PMult` + rescale the ciphertext scale returns to precisely its
    /// input scale.
    pub fn encode_at_prime_scale(
        &self,
        values: &[f64],
        level: usize,
        with_special: bool,
    ) -> Plaintext {
        let scale = self.ctx.moduli[level] as f64;
        self.encode(values, scale, level, with_special)
    }

    /// Errorless weight encoding *with* the special limb, for double-hoisted
    /// accumulation (the plaintext can then multiply extended-basis
    /// key-switch accumulators).
    pub fn encode_at_prime_scale_ws(&self, values: &[f64], level: usize) -> Plaintext {
        let scale = self.ctx.moduli[level] as f64;
        self.encode(values, scale, level, true)
    }

    /// Batch form of [`Encoder::encode_at_prime_scale_ws`]: encodes many
    /// weight diagonals at once, fanned out across the shared rayon pool.
    /// This is the setup-time entry point of the prepared-inference path —
    /// each encode (inverse FFT + per-limb NTT) is independent, so a whole
    /// layer's diagonals encode in one parallel sweep.
    pub fn encode_prime_scale_ws_batch(&self, values: &[Vec<f64>], level: usize) -> Vec<Plaintext> {
        let par = orion_math::parallel::batch_parallel(values.len());
        orion_math::parallel::map_indexed(values.len(), par, |i| {
            self.encode_at_prime_scale_ws(&values[i], level)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn setup() -> Encoder {
        Encoder::new(Context::new(CkksParams::tiny()))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = setup();
        let slots = enc.context().slots();
        let vals: Vec<f64> = (0..slots)
            .map(|i| ((i as f64) * 0.01).sin() * 3.0)
            .collect();
        let pt = enc.encode(&vals, enc.context().scale(), 2, false);
        let out = enc.decode(&pt);
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn short_vectors_are_zero_padded() {
        let enc = setup();
        let pt = enc.encode(&[1.0, 2.0, 3.0], enc.context().scale(), 1, false);
        let out = enc.decode(&pt);
        assert!((out[0] - 1.0).abs() < 1e-6);
        assert!((out[2] - 3.0).abs() < 1e-6);
        assert!(out[5].abs() < 1e-6);
    }

    #[test]
    fn constant_encoding_is_exact_in_every_slot() {
        let enc = setup();
        let pt = enc.encode_constant(0.5, enc.context().scale(), 0, false);
        let out = enc.decode(&pt);
        for &x in &out {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn plaintext_addition_homomorphism() {
        let enc = setup();
        let ctx = enc.context().clone();
        let slots = ctx.slots();
        let a: Vec<f64> = (0..slots).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..slots).map(|i| (i % 5) as f64 * 0.25).collect();
        let mut pa = enc.encode(&a, ctx.scale(), 1, false);
        let pb = enc.encode(&b, ctx.scale(), 1, false);
        pa.poly.add_assign(&pb.poly, &ctx);
        let out = enc.decode(&pa);
        for i in 0..slots {
            assert!((out[i] - (a[i] + b[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn prime_scale_encoding_uses_chain_prime() {
        let enc = setup();
        let pt = enc.encode_at_prime_scale(&[1.0], 2, false);
        assert_eq!(pt.scale, enc.context().moduli[2] as f64);
    }

    #[test]
    fn batch_prime_scale_encoding_matches_single() {
        let enc = setup();
        let slots = enc.context().slots();
        let diags: Vec<Vec<f64>> = (0..6)
            .map(|d| (0..slots).map(|i| ((i + d) % 7) as f64 * 0.1).collect())
            .collect();
        let batch = enc.encode_prime_scale_ws_batch(&diags, 2);
        assert_eq!(batch.len(), diags.len());
        for (d, pt) in diags.iter().zip(&batch) {
            let single = enc.encode_at_prime_scale_ws(d, 2);
            assert_eq!(pt.poly, single.poly, "batch encode must be bit-exact");
            assert_eq!(pt.scale, single.scale);
        }
    }
}
