//! Hoisted rotations and the lazy-ModDown accumulator (double-hoisting).
//!
//! Hoisting (paper §3.3) reuses the expensive digit decomposition of a
//! ciphertext across many rotations of that same ciphertext — exactly the
//! baby-step pattern of BSGS matrix–vector products. Double-hoisting
//! additionally keeps the inner-product accumulation in the extended basis
//! `Q·p`, performing a single ModDown per giant-step group instead of one
//! per rotation (Bossuat et al., Algorithm 6).

use crate::encrypt::{Ciphertext, Plaintext};
use crate::eval::Evaluator;
use crate::params::Context;
use crate::poly::{Form, RnsPoly};

/// Decomposes `c` (evaluation form, no special limb) into per-limb digits
/// extended to the full basis `{q_0…q_ℓ, p}`, NTT'd and ready for
/// key-switch inner products.
///
/// Because each digit is a *single-limb* value (`< q_i`), basis extension
/// is exact integer reduction — no approximate CRT is needed (DESIGN.md).
pub fn decompose_digits(ctx: &Context, c: &RnsPoly) -> Vec<RnsPoly> {
    assert_eq!(c.form, Form::Eval);
    assert!(!c.has_special());
    let level = c.level();
    let p = ctx.special;
    // Each digit's basis extension performs `level + 2` NTTs and digits are
    // independent, so this is the key-switch hot loop the shared rayon pool
    // attacks first.
    let par = orion_math::parallel::ntt_parallel(ctx.degree(), level + 1);
    let n = ctx.degree();
    orion_math::parallel::map_indexed(level + 1, par, |i| {
        // Bring limb i to coefficient form (arena scratch, lazy NTT).
        let mut digit = orion_math::arena::scratch_u64_raw(n);
        digit.copy_from_slice(&c.limbs[i]);
        ctx.ntt[i].inverse_lazy(&mut digit);
        // Extend to every chain modulus and the special prime.
        let k = orion_math::simd::kernels();
        let extend = |q: u64, table: &orion_math::NttTable| -> Vec<u64> {
            let mut l = orion_math::arena::take_u64_raw(n);
            (k.mod_reduce)(&mut l, &digit, q);
            table.forward_lazy(&mut l);
            l
        };
        let limbs: Vec<Vec<u64>> = (0..=level)
            .map(|j| extend(ctx.moduli[j], &ctx.ntt[j]))
            .collect();
        let sp = extend(p, &ctx.ntt_special);
        RnsPoly {
            limbs,
            special: Some(sp),
            form: Form::Eval,
        }
    })
}

/// A ciphertext with its key-switch digit decomposition precomputed, ready
/// for cheap repeated rotations.
pub struct HoistedDigits {
    /// Extended, NTT'd digits of `c1`.
    digits: Vec<RnsPoly>,
    /// Original `c0` (evaluation form).
    c0: RnsPoly,
    /// Original `c1` (needed for the rotation-by-zero fast path).
    c1: RnsPoly,
    /// Ciphertext scale.
    scale: f64,
}

impl HoistedDigits {
    /// Precomputes the decomposition of `ct` (the "hoisted" part).
    pub fn new(ctx: &Context, ct: &Ciphertext) -> Self {
        Self {
            digits: decompose_digits(ctx, &ct.c1),
            c0: ct.c0.clone(),
            c1: ct.c1.clone(),
            scale: ct.scale,
        }
    }

    /// Ciphertext level.
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Ciphertext scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Rotates by `k` using the precomputed digits (one automorphism
    /// permutation + key inner product + ModDown; no per-rotation NTTs
    /// except inside ModDown).
    pub fn rotate(&self, eval: &Evaluator, k: isize) -> Ciphertext {
        let ctx = eval.context();
        if k == 0 {
            return Ciphertext {
                c0: self.c0.clone(),
                c1: self.c1.clone(),
                scale: self.scale,
            };
        }
        let g = ctx.galois_element(k);
        let perm = ctx.galois_permutation(g);
        // Typed key lookup: a miss panics here with the MissingRotationKey
        // message — statically unreachable on verified plans (the
        // orion_nn::verify key-coverage pass checks every hoisted rotation).
        let key = eval
            .keys()
            .try_rotation(g)
            .unwrap_or_else(|e| panic!("{e}"));
        let pds: Vec<RnsPoly> = self
            .digits
            .iter()
            .map(|d| d.automorphism_eval(&perm))
            .collect();
        let (mut acc_b, mut acc_a) = key.inner_product(ctx, &pds);
        for pd in pds {
            pd.recycle();
        }
        acc_b.mod_down_special_assign(ctx);
        acc_a.mod_down_special_assign(ctx);
        let mut c0 = self.c0.automorphism_eval(&perm);
        c0.add_assign(&acc_b, ctx);
        Ciphertext {
            c0,
            c1: acc_a,
            scale: self.scale,
        }
    }
}

/// A rotation of a hoisted ciphertext kept in the extended basis — the
/// shareable unit of double-hoisting: computed once per distinct rotation
/// step, then multiplied by many plaintext diagonals.
pub struct RotatedExt {
    /// `(ks_b, ks_a)` in the extended basis, or `None` for rotation by 0.
    ext: Option<(RnsPoly, RnsPoly)>,
    /// `σ(c0)` (base basis).
    c0: RnsPoly,
    /// Original `c1` (only for rotation by 0).
    c1: Option<RnsPoly>,
    /// Source ciphertext scale.
    scale: f64,
}

impl RotatedExt {
    /// The rotation-by-0 view of a ciphertext — bit-identical to
    /// `HoistedDigits::rotate_ext(eval, 0)` but without paying the digit
    /// decomposition (rotation by 0 never touches the key-switch, so a
    /// consumer holding the ciphertext itself can build this directly).
    pub fn identity(ct: &Ciphertext) -> Self {
        RotatedExt {
            ext: None,
            c0: ct.c0.clone(),
            c1: Some(ct.c1.clone()),
            scale: ct.scale,
        }
    }
}

impl HoistedDigits {
    /// Computes the rotation's key-switch inner product once, leaving the
    /// result in the extended basis for reuse across many diagonals.
    pub fn rotate_ext(&self, eval: &Evaluator, k: isize) -> RotatedExt {
        let ctx = eval.context();
        if k == 0 {
            return RotatedExt {
                ext: None,
                c0: self.c0.clone(),
                c1: Some(self.c1.clone()),
                scale: self.scale,
            };
        }
        let g = ctx.galois_element(k);
        let perm = ctx.galois_permutation(g);
        // Typed key lookup: a miss panics here with the MissingRotationKey
        // message — statically unreachable on verified plans (the
        // orion_nn::verify key-coverage pass checks every hoisted rotation).
        let key = eval
            .keys()
            .try_rotation(g)
            .unwrap_or_else(|e| panic!("{e}"));
        let pds: Vec<RnsPoly> = self
            .digits
            .iter()
            .map(|d| d.automorphism_eval(&perm))
            .collect();
        let (ks_b, ks_a) = key.inner_product(ctx, &pds);
        for pd in pds {
            pd.recycle();
        }
        RotatedExt {
            ext: Some((ks_b, ks_a)),
            c0: self.c0.automorphism_eval(&perm),
            c1: None,
            scale: self.scale,
        }
    }
}

/// Lazy-ModDown accumulator: sums `pt_k ⊙ HRot_k(ct)` terms while keeping
/// the key-switch parts in the extended basis; a single ModDown happens in
/// [`ExtAccumulator::finalize`]. This is the double-hoisting inner loop of
/// the BSGS matvec (paper §3.3, Equation 1).
pub struct ExtAccumulator {
    acc_b_ext: RnsPoly,
    acc_a_ext: RnsPoly,
    acc_b_base: RnsPoly,
    acc_a_base: RnsPoly,
    any_ext: bool,
    scale: Option<f64>,
}

impl ExtAccumulator {
    /// Creates an empty accumulator at `level`.
    pub fn new(ctx: &Context, level: usize) -> Self {
        Self {
            acc_b_ext: RnsPoly::zero(ctx, level, Form::Eval, true),
            acc_a_ext: RnsPoly::zero(ctx, level, Form::Eval, true),
            acc_b_base: RnsPoly::zero(ctx, level, Form::Eval, false),
            acc_a_base: RnsPoly::zero(ctx, level, Form::Eval, false),
            any_ext: false,
            scale: None,
        }
    }

    fn bump_scale(&mut self, s: f64) {
        match self.scale {
            None => self.scale = Some(s),
            Some(prev) => assert!(
                crate::eval::scales_close(prev, s),
                "accumulator terms must share one scale"
            ),
        }
    }

    /// Accumulates `pt ⊙ HRot_k(hoisted)`.
    ///
    /// For `k ≠ 0` the plaintext must carry a special limb (encode with
    /// `with_special = true`); the rotation's key-switch output is consumed
    /// lazily in the extended basis.
    pub fn add_rotated_pmult(
        &mut self,
        eval: &Evaluator,
        h: &HoistedDigits,
        k: isize,
        pt: &Plaintext,
    ) {
        let ctx = eval.context();
        self.bump_scale(h.scale * pt.scale);
        if k == 0 {
            // Base-basis accumulation borrows the plaintext limbs directly
            // (its special limb, if any, is simply not read).
            self.acc_b_base
                .add_mul_assign_parts(&h.c0, &pt.poly.limbs, None, ctx);
            self.acc_a_base
                .add_mul_assign_parts(&h.c1, &pt.poly.limbs, None, ctx);
            return;
        }
        assert!(
            pt.poly.has_special(),
            "double-hoisting needs extended-basis plaintexts"
        );
        let g = ctx.galois_element(k);
        let perm = ctx.galois_permutation(g);
        // Typed key lookup: a miss panics here with the MissingRotationKey
        // message — statically unreachable on verified plans (the
        // orion_nn::verify key-coverage pass checks every hoisted rotation).
        let key = eval
            .keys()
            .try_rotation(g)
            .unwrap_or_else(|e| panic!("{e}"));
        let pds: Vec<RnsPoly> = h
            .digits
            .iter()
            .map(|d| d.automorphism_eval(&perm))
            .collect();
        let (ks_b, ks_a) = key.inner_product(ctx, &pds);
        for pd in pds {
            pd.recycle();
        }
        // pt ⊙ key-switch parts stay extended; pt ⊙ σ(c0) is base-basis.
        self.acc_b_ext.add_mul_assign(&ks_b, &pt.poly, ctx);
        self.acc_a_ext.add_mul_assign(&ks_a, &pt.poly, ctx);
        ks_b.recycle();
        ks_a.recycle();
        let sc0 = h.c0.automorphism_eval(&perm);
        self.acc_b_base
            .add_mul_assign_parts(&sc0, &pt.poly.limbs, None, ctx);
        sc0.recycle();
        self.any_ext = true;
        let _ = &self.any_ext;
    }

    /// Accumulates `pt ⊙ rot` where `rot` is a precomputed [`RotatedExt`]
    /// (the key-switch inner product is shared across all diagonals using
    /// the same rotation step — Bossuat et al. Algorithm 6).
    pub fn add_pmult_rotated(&mut self, eval: &Evaluator, rot: &RotatedExt, pt: &Plaintext) {
        let ctx = eval.context();
        match &rot.ext {
            None => {
                // rotation by zero: plain base-basis accumulation
                let c1 = rot.c1.as_ref().expect("zero rotation keeps c1");
                self.bump_scale_public(rot.scale * pt.scale);
                self.acc_b_base
                    .add_mul_assign_parts(&rot.c0, &pt.poly.limbs, None, ctx);
                self.acc_a_base
                    .add_mul_assign_parts(c1, &pt.poly.limbs, None, ctx);
            }
            Some((ks_b, ks_a)) => {
                assert!(
                    pt.poly.has_special(),
                    "double-hoisting needs extended-basis plaintexts"
                );
                self.bump_scale_public(rot.scale * pt.scale);
                self.acc_b_ext.add_mul_assign(ks_b, &pt.poly, ctx);
                self.acc_a_ext.add_mul_assign(ks_a, &pt.poly, ctx);
                self.acc_b_base
                    .add_mul_assign_parts(&rot.c0, &pt.poly.limbs, None, ctx);
                self.any_ext = true;
            }
        }
    }

    fn bump_scale_public(&mut self, term_scale: f64) {
        match self.scale {
            None => self.scale = Some(term_scale),
            Some(prev) => assert!(
                crate::eval::scales_close(prev, term_scale),
                "accumulator terms must share one scale"
            ),
        }
    }

    /// Performs the deferred ModDown and returns the accumulated
    /// ciphertext.
    pub fn finalize(mut self, eval: &Evaluator) -> Ciphertext {
        let ctx = eval.context();
        self.acc_b_ext.mod_down_special_assign(ctx);
        self.acc_a_ext.mod_down_special_assign(ctx);
        let mut c0 = self.acc_b_base;
        c0.add_assign(&self.acc_b_ext, ctx);
        self.acc_b_ext.recycle();
        let mut c1 = self.acc_a_base;
        c1.add_assign(&self.acc_a_ext, ctx);
        self.acc_a_ext.recycle();
        Ciphertext {
            c0,
            c1,
            scale: self.scale.expect("empty accumulator"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    struct H {
        ctx: Arc<Context>,
        enc: Encoder,
        encryptor: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        rng: StdRng,
    }

    fn setup(rotations: &[isize]) -> H {
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(31));
        let pk = Arc::new(kg.gen_public_key());
        let keys = Arc::new(kg.gen_eval_keys(rotations));
        let sk = kg.secret_key();
        H {
            ctx: ctx.clone(),
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::with_public_key(ctx.clone(), pk),
            dec: Decryptor::new(ctx.clone(), sk),
            eval: Evaluator::new(ctx, keys),
            rng: StdRng::seed_from_u64(32),
        }
    }

    #[test]
    fn hoisted_rotation_matches_plain_rotation() {
        let mut h = setup(&[1, 7]);
        let n = h.ctx.slots();
        let a: Vec<f64> = (0..n).map(|i| ((i * 3) % 11) as f64 * 0.2).collect();
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), 2, false), &mut h.rng);
        let hd = HoistedDigits::new(&h.ctx, &ct);
        for k in [0isize, 1, 7] {
            let via_hoist = h.enc.decode(&h.dec.decrypt(&hd.rotate(&h.eval, k)));
            let via_plain = h.enc.decode(&h.dec.decrypt(&h.eval.rotate(&ct, k)));
            for i in (0..n).step_by(23) {
                assert!(
                    (via_hoist[i] - via_plain[i]).abs() < 1e-2,
                    "k={k} slot {i}: {} vs {}",
                    via_hoist[i],
                    via_plain[i]
                );
            }
        }
    }

    #[test]
    fn double_hoisted_inner_sum_matches_naive() {
        // sum_k pt_k ⊙ rot_k(ct), k in {0, 1, 2}.
        let mut h = setup(&[1, 2]);
        let n = h.ctx.slots();
        let level = 2;
        let a: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.3 - 1.0).collect();
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut h.rng);
        let weights: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..n).map(|i| (((i + k) % 5) as f64) * 0.15).collect())
            .collect();

        // Naive computation.
        let mut naive = vec![0.0f64; n];
        for (k, w) in weights.iter().enumerate() {
            for i in 0..n {
                naive[i] += w[i] * a[(i + k) % n];
            }
        }

        let hd = HoistedDigits::new(&h.ctx, &ct);
        let mut acc = ExtAccumulator::new(&h.ctx, level);
        for (k, w) in weights.iter().enumerate() {
            let pt = h.enc.encode_at_prime_scale_ws(w, level);
            acc.add_rotated_pmult(&h.eval, &hd, k as isize, &pt);
        }
        let mut out_ct = acc.finalize(&h.eval);
        h.eval.rescale_assign(&mut out_ct);
        assert_eq!(out_ct.scale, h.ctx.scale());
        let out = h.enc.decode(&h.dec.decrypt(&out_ct));
        for i in (0..n).step_by(31) {
            assert!(
                (out[i] - naive[i]).abs() < 2e-2,
                "slot {i}: {} vs {}",
                out[i],
                naive[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "share one scale")]
    fn accumulator_rejects_mixed_scales() {
        let mut h = setup(&[1]);
        let level = 1;
        let ct = h.encryptor.encrypt(
            &h.enc.encode(&[1.0], h.ctx.scale(), level, false),
            &mut h.rng,
        );
        let hd = HoistedDigits::new(&h.ctx, &ct);
        let mut acc = ExtAccumulator::new(&h.ctx, level);
        let p1 = h.enc.encode(&[1.0], h.ctx.scale(), level, true);
        let p2 = h.enc.encode(&[1.0], h.ctx.scale() * 4.0, level, true);
        acc.add_rotated_pmult(&h.eval, &hd, 1, &p1);
        acc.add_rotated_pmult(&h.eval, &hd, 1, &p2);
    }
}
