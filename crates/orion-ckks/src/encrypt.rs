//! Plaintexts, ciphertexts, encryption, and decryption (paper §2.3).

use crate::keys::{PublicKey, SecretKey};
use crate::params::Context;
use crate::poly::{Form, RnsPoly};
use rand::Rng;
use std::sync::Arc;

/// An encoded (but unencrypted) polynomial `[m]` with its scaling factor.
#[derive(Clone, Debug)]
pub struct Plaintext {
    /// The encoding polynomial (usually evaluation form).
    pub poly: RnsPoly,
    /// Scaling factor Δ used at encoding time.
    pub scale: f64,
}

impl Plaintext {
    /// Level of the underlying polynomial.
    pub fn level(&self) -> usize {
        self.poly.level()
    }
}

/// A CKKS ciphertext `[[m]] = (c0, c1)` with `c0 + c1·s ≈ [m]`.
#[derive(Clone, Debug)]
pub struct Ciphertext {
    /// First component, evaluation form.
    pub c0: RnsPoly,
    /// Second component, evaluation form.
    pub c1: RnsPoly,
    /// Current scaling factor.
    pub scale: f64,
}

impl Ciphertext {
    /// Current multiplicative level ℓ.
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Approximate size in bytes (paper §2.1 notes ciphertexts are KBs–MBs).
    pub fn size_bytes(&self) -> usize {
        2 * (self.level() + 1) * self.c0.limbs[0].len() * std::mem::size_of::<u64>()
    }
}

/// Encrypts plaintexts under either the public or the secret key.
pub enum Encryptor {
    /// Public-key encryption (the usual client setup).
    Public {
        ctx: Arc<Context>,
        pk: Arc<PublicKey>,
    },
    /// Secret-key encryption (used by the bootstrap oracle).
    Secret {
        ctx: Arc<Context>,
        sk: Arc<SecretKey>,
    },
}

impl Encryptor {
    /// Public-key encryptor.
    pub fn with_public_key(ctx: Arc<Context>, pk: Arc<PublicKey>) -> Self {
        Self::Public { ctx, pk }
    }

    /// Secret-key encryptor.
    pub fn with_secret_key(ctx: Arc<Context>, sk: Arc<SecretKey>) -> Self {
        Self::Secret { ctx, sk }
    }

    fn ctx(&self) -> &Arc<Context> {
        match self {
            Self::Public { ctx, .. } | Self::Secret { ctx, .. } => ctx,
        }
    }

    /// Encrypts `pt` at the plaintext's level.
    pub fn encrypt<R: Rng>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let ctx = self.ctx().clone();
        let level = pt.level();
        match self {
            Self::Public { pk, .. } => {
                let mut v = RnsPoly::sample_ternary(&ctx, level, false, rng);
                v.to_eval(&ctx);
                let mut e0 = RnsPoly::sample_gaussian(&ctx, level, false, rng);
                e0.to_eval(&ctx);
                let mut e1 = RnsPoly::sample_gaussian(&ctx, level, false, rng);
                e1.to_eval(&ctx);
                let mut pk_b = pk.b.clone();
                pk_b.drop_to_level(level);
                let mut pk_a = pk.a.clone();
                pk_a.drop_to_level(level);
                let mut c0 = v.mul_pointwise(&pk_b, &ctx);
                c0.add_assign(&e0, &ctx);
                let mut m = pt.poly.clone();
                m.to_eval(&ctx);
                m.special = None;
                c0.add_assign(&m, &ctx);
                let mut c1 = v.mul_pointwise(&pk_a, &ctx);
                c1.add_assign(&e1, &ctx);
                Ciphertext {
                    c0,
                    c1,
                    scale: pt.scale,
                }
            }
            Self::Secret { sk, .. } => {
                let a = RnsPoly::sample_uniform(&ctx, level, Form::Eval, false, rng);
                let mut e = RnsPoly::sample_gaussian(&ctx, level, false, rng);
                e.to_eval(&ctx);
                let mut s = sk.s.clone();
                s.special = None;
                s.drop_to_level(level);
                // c0 = -a·s + e + m, c1 = a
                let mut c0 = a.mul_pointwise(&s, &ctx);
                c0.neg_assign(&ctx);
                c0.add_assign(&e, &ctx);
                let mut m = pt.poly.clone();
                m.to_eval(&ctx);
                m.special = None;
                c0.add_assign(&m, &ctx);
                Ciphertext {
                    c0,
                    c1: a,
                    scale: pt.scale,
                }
            }
        }
    }
}

/// Decrypts ciphertexts with the secret key.
pub struct Decryptor {
    ctx: Arc<Context>,
    sk: Arc<SecretKey>,
}

impl Decryptor {
    /// Creates a decryptor.
    pub fn new(ctx: Arc<Context>, sk: Arc<SecretKey>) -> Self {
        Self { ctx, sk }
    }

    /// Decrypts to a plaintext (`m ≈ c0 + c1·s`), in coefficient form.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let mut s = self.sk.s.clone();
        s.special = None;
        s.drop_to_level(ct.level());
        let mut m = ct.c1.mul_pointwise(&s, &self.ctx);
        m.add_assign(&ct.c0, &self.ctx);
        m.to_coeff(&self.ctx);
        Plaintext {
            poly: m,
            scale: ct.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Arc<Context>, Encoder, Encryptor, Encryptor, Decryptor) {
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(11));
        let pk = Arc::new(kg.gen_public_key());
        let sk = kg.secret_key();
        let enc = Encoder::new(ctx.clone());
        let e_pub = Encryptor::with_public_key(ctx.clone(), pk);
        let e_sec = Encryptor::with_secret_key(ctx.clone(), sk.clone());
        let dec = Decryptor::new(ctx.clone(), sk);
        (ctx, enc, e_pub, e_sec, dec)
    }

    #[test]
    fn public_encrypt_decrypt_roundtrip() {
        let (ctx, enc, e_pub, _, dec) = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let vals: Vec<f64> = (0..ctx.slots()).map(|i| ((i % 8) as f64) - 3.5).collect();
        let pt = enc.encode(&vals, ctx.scale(), 2, false);
        let ct = e_pub.encrypt(&pt, &mut rng);
        assert_eq!(ct.level(), 2);
        let out = enc.decode(&dec.decrypt(&ct));
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn secret_encrypt_decrypt_roundtrip() {
        let (ctx, enc, _, e_sec, dec) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let vals: Vec<f64> = (0..ctx.slots()).map(|i| (i as f64 * 0.3).cos()).collect();
        let pt = enc.encode(&vals, ctx.scale(), 1, false);
        let ct = e_sec.encrypt(&pt, &mut rng);
        let out = enc.decode(&dec.decrypt(&ct));
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fresh_ciphertexts_at_different_levels() {
        let (ctx, enc, e_pub, _, dec) = setup();
        let mut rng = StdRng::seed_from_u64(14);
        for level in 0..=ctx.max_level() {
            let pt = enc.encode(&[1.5, -2.5], ctx.scale(), level, false);
            let ct = e_pub.encrypt(&pt, &mut rng);
            assert_eq!(ct.level(), level);
            let out = enc.decode(&dec.decrypt(&ct));
            assert!((out[0] - 1.5).abs() < 1e-4);
            assert!((out[1] + 2.5).abs() < 1e-4);
        }
    }

    #[test]
    fn ciphertext_size_tracks_level() {
        let (ctx, enc, e_pub, _, _) = setup();
        let mut rng = StdRng::seed_from_u64(15);
        let hi = e_pub.encrypt(&enc.encode(&[1.0], ctx.scale(), 3, false), &mut rng);
        let lo = e_pub.encrypt(&enc.encode(&[1.0], ctx.scale(), 1, false), &mut rng);
        assert!(hi.size_bytes() > lo.size_bytes());
    }
}
