//! Analytical noise tracking.
//!
//! CKKS is approximate: every operation adds bounded error (paper §2.3
//! "both rounding during encoding and the addition of noise during
//! encryption introduce small errors"). This module tracks the predicted
//! standard deviation of the *slot-value* error through a computation,
//! using the standard heuristics (errors as independent zero-mean
//! variables, canonical-embedding norm √N):
//!
//! * fresh encryption: encoding rounding (½ per coefficient → `√(N/12)/Δ`
//!   per slot) + encryption noise `σ·√(2N/3)`-ish,
//! * `HAdd`: variances add,
//! * `PMult` by a plaintext with max magnitude `w`: error scales by `w`,
//!   plus the plaintext's own rounding against the ciphertext magnitude,
//! * key-switching (`HMult`/`HRot`): adds `(ℓ+1)·σ·N/p`-order noise,
//! * rescale: divides by `q_ℓ` and adds a rounding term.
//!
//! [`NoiseEstimator`] is *predictive* — tests validate it against the
//! noise actually measured on the real backend (within an order of
//! magnitude, which is what a budget estimator needs).

use crate::params::Context;

/// Predicted slot-error standard deviation for one ciphertext.
#[derive(Clone, Copy, Debug)]
pub struct NoiseEstimate {
    /// Standard deviation of the per-slot error (cleartext units).
    pub sigma: f64,
}

impl NoiseEstimate {
    /// Approximate error bound (6σ).
    pub fn bound(&self) -> f64 {
        6.0 * self.sigma
    }

    /// Bits of precision this noise supports for unit-scale values.
    pub fn precision_bits(&self) -> f64 {
        -self.sigma.log2()
    }
}

/// Tracks noise through homomorphic operations.
pub struct NoiseEstimator<'a> {
    ctx: &'a Context,
}

impl<'a> NoiseEstimator<'a> {
    /// Creates an estimator for `ctx`.
    pub fn new(ctx: &'a Context) -> Self {
        Self { ctx }
    }

    /// Noise of a freshly encrypted ciphertext at scale Δ.
    pub fn fresh(&self) -> NoiseEstimate {
        let n = self.ctx.degree() as f64;
        let delta = self.ctx.scale();
        // encoding rounding: each coefficient off by U(±1/2); through the
        // decode FFT a slot sees ~√N·(1/√12) of it.
        let encode = (n / 12.0).sqrt() / delta;
        // encryption: e0 + v·e1-ish, coefficients ~σ; slots see √(2N/3)·σ.
        let encrypt = self.ctx.params.sigma * (2.0 * n / 3.0).sqrt() / delta;
        NoiseEstimate {
            sigma: (encode * encode + encrypt * encrypt).sqrt(),
        }
    }

    /// Noise after `HAdd`.
    pub fn add(&self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate {
        NoiseEstimate {
            sigma: (a.sigma * a.sigma + b.sigma * b.sigma).sqrt(),
        }
    }

    /// Noise after `PMult` by a plaintext of max magnitude `w_max` encoded
    /// at prime scale, *followed by rescale*: the input error scales by
    /// `w_max`; rescaling adds a rounding term.
    pub fn pmult_rescale(&self, a: NoiseEstimate, w_max: f64, level: usize) -> NoiseEstimate {
        let n = self.ctx.degree() as f64;
        let delta = self.ctx.scale();
        let scaled = a.sigma * w_max.max(1e-12);
        // rescale rounding: coefficients gain U(±1/2) after division by q_ℓ
        let _ = level;
        let rounding = (n / 12.0).sqrt() / delta;
        NoiseEstimate {
            sigma: (scaled * scaled + rounding * rounding).sqrt(),
        }
    }

    /// Noise added by one key-switch (rotation or relinearization) at
    /// level ℓ: digits are `< q_i`, key errors have std σ, and everything
    /// is divided by the special prime.
    pub fn key_switch(&self, a: NoiseEstimate, level: usize) -> NoiseEstimate {
        let n = self.ctx.degree() as f64;
        let delta = self.ctx.scale();
        let p = self.ctx.special as f64;
        let max_q = self.ctx.moduli[..=level]
            .iter()
            .map(|&q| q as f64)
            .fold(0.0, f64::max);
        // Σ_i ĉ_i·e_i has coefficient std ~ √(ℓ+1)·(q/√12)·σ·√N; ModDown
        // divides by p; slots see another √N.
        let ks =
            ((level + 1) as f64).sqrt() * max_q * self.ctx.params.sigma * n / (p * 3.46 * delta);
        NoiseEstimate {
            sigma: (a.sigma * a.sigma + ks * ks).sqrt(),
        }
    }

    /// Noise after `HMult` of two ciphertexts with value bounds `ma`, `mb`,
    /// followed by rescale.
    pub fn hmult_rescale(
        &self,
        a: NoiseEstimate,
        b: NoiseEstimate,
        ma: f64,
        mb: f64,
        level: usize,
    ) -> NoiseEstimate {
        // cross terms: a's error times b's magnitude and vice versa
        let cross = (a.sigma * mb).hypot(b.sigma * ma);
        let ks = self.key_switch(NoiseEstimate { sigma: 0.0 }, level);
        let n = self.ctx.degree() as f64;
        let rounding = (n / 12.0).sqrt() / self.ctx.scale();
        NoiseEstimate {
            sigma: (cross * cross + ks.sigma * ks.sigma + rounding * rounding).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    struct H {
        ctx: Arc<Context>,
        enc: Encoder,
        encryptor: Encryptor,
        dec: Decryptor,
        eval: crate::eval::Evaluator,
    }

    fn setup() -> H {
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(1));
        let pk = Arc::new(kg.gen_public_key());
        let keys = Arc::new(kg.gen_eval_keys(&[1]));
        let sk = kg.secret_key();
        H {
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::with_public_key(ctx.clone(), pk),
            dec: Decryptor::new(ctx.clone(), sk),
            eval: crate::eval::Evaluator::new(ctx.clone(), keys),
            ctx,
        }
    }

    fn measured_sigma(vals: &[f64], out: &[f64]) -> f64 {
        let n = vals.len() as f64;
        (vals
            .iter()
            .zip(out)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    fn within_two_orders(predicted: f64, measured: f64) -> bool {
        // an estimator is useful if it brackets reality within ~2 orders
        measured < predicted * 100.0 && measured > predicted / 100.0
    }

    #[test]
    fn fresh_encryption_noise_predicted() {
        let h = setup();
        let est = NoiseEstimator::new(&h.ctx);
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..h.ctx.slots())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&vals, h.ctx.scale(), 2, false), &mut rng);
        let out = h.enc.decode(&h.dec.decrypt(&ct));
        let measured = measured_sigma(&vals, &out);
        let predicted = est.fresh().sigma;
        assert!(
            within_two_orders(predicted, measured),
            "predicted {predicted:.3e} vs measured {measured:.3e}"
        );
    }

    #[test]
    fn rotation_noise_predicted() {
        let h = setup();
        let est = NoiseEstimator::new(&h.ctx);
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<f64> = (0..h.ctx.slots())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let level = 2;
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&vals, h.ctx.scale(), level, false), &mut rng);
        let rot = h.eval.rotate(&ct, 1);
        let out = h.enc.decode(&h.dec.decrypt(&rot));
        let expect: Vec<f64> = (0..vals.len())
            .map(|i| vals[(i + 1) % vals.len()])
            .collect();
        let measured = measured_sigma(&expect, &out);
        let predicted = est.key_switch(est.fresh(), level).sigma;
        assert!(
            within_two_orders(predicted, measured),
            "predicted {predicted:.3e} vs measured {measured:.3e}"
        );
    }

    #[test]
    fn pmult_noise_predicted() {
        let h = setup();
        let est = NoiseEstimator::new(&h.ctx);
        let mut rng = StdRng::seed_from_u64(4);
        let vals: Vec<f64> = (0..h.ctx.slots())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let w: Vec<f64> = (0..h.ctx.slots())
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect();
        let level = 3;
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&vals, h.ctx.scale(), level, false), &mut rng);
        let pt = h.enc.encode_at_prime_scale(&w, level, false);
        let mut prod = h.eval.mul_plain(&ct, &pt);
        h.eval.rescale_assign(&mut prod);
        let out = h.enc.decode(&h.dec.decrypt(&prod));
        let expect: Vec<f64> = vals.iter().zip(&w).map(|(a, b)| a * b).collect();
        let measured = measured_sigma(&expect, &out);
        let predicted = est.pmult_rescale(est.fresh(), 2.0, level).sigma;
        assert!(
            within_two_orders(predicted, measured),
            "predicted {predicted:.3e} vs measured {measured:.3e}"
        );
    }

    #[test]
    fn noise_grows_monotonically_through_a_pipeline() {
        let ctx = Context::new(CkksParams::tiny());
        let est = NoiseEstimator::new(&ctx);
        let fresh = est.fresh();
        let after_rot = est.key_switch(fresh, 3);
        let after_mult = est.hmult_rescale(after_rot, fresh, 1.0, 1.0, 3);
        assert!(after_rot.sigma >= fresh.sigma);
        assert!(after_mult.sigma >= after_rot.sigma);
        assert!(after_mult.precision_bits() < fresh.precision_bits());
        assert!(fresh.bound() > fresh.sigma);
    }
}
