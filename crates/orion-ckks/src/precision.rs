//! Output-precision measurement.
//!
//! The paper reports "mean precision (in bits) of the output, defined as
//! −log₂(ε), where ε is the mean absolute difference between the outputs of
//! Orion and PyTorch" (§7). These helpers compute exactly that statistic
//! between an FHE output and its cleartext reference.

/// Mean absolute error between two equal-length vectors.
pub fn mean_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Mean precision in bits: `−log₂(mean_abs_error)`. Returns `f64::INFINITY`
/// for exact matches.
pub fn precision_bits(fhe: &[f64], reference: &[f64]) -> f64 {
    let eps = mean_abs_error(fhe, reference);
    if eps == 0.0 {
        f64::INFINITY
    } else {
        -eps.log2()
    }
}

/// Maximum absolute error (worst slot).
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_of_quarter_lsb() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.25, 2.25, 3.25];
        assert!((precision_bits(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_match_is_infinite() {
        let a = vec![0.5; 4];
        assert!(precision_bits(&a, &a).is_infinite());
    }

    #[test]
    fn max_error_picks_worst_slot() {
        let a = vec![0.0, 0.0];
        let b = vec![0.1, -0.4];
        assert!((max_abs_error(&a, &b) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        mean_abs_error(&[1.0], &[1.0, 2.0]);
    }
}
