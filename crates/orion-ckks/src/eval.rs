//! The homomorphic evaluator: `HAdd`, `PAdd`, `PMult`, `HMult`, rescaling,
//! level management, and Galois rotations (paper §2.5).

use crate::encrypt::{Ciphertext, Plaintext};
use crate::keys::{EvalKeys, KeySwitchKey};
use crate::params::Context;
use crate::poly::RnsPoly;
use std::sync::Arc;

/// True when two scales agree to within relative precision, computed as a
/// difference against the larger magnitude rather than a quotient — safe
/// when either operand is zero (a zero scale then *fails* the check with a
/// finite message instead of producing NaN/∞ inside the comparison).
pub(crate) fn scales_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

/// Evaluator bound to a context and evaluation keys.
pub struct Evaluator {
    ctx: Arc<Context>,
    keys: Arc<EvalKeys>,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(ctx: Arc<Context>, keys: Arc<EvalKeys>) -> Self {
        Self { ctx, keys }
    }

    /// The bound context.
    pub fn context(&self) -> &Arc<Context> {
        &self.ctx
    }

    /// The bound evaluation keys.
    pub fn keys(&self) -> &Arc<EvalKeys> {
        &self.keys
    }

    fn assert_scales_match(a: f64, b: f64) {
        assert!(
            scales_close(a, b),
            "operand scales must match (got {a} vs {b}); rescale or adjust first"
        );
    }

    /// `HAdd`: ciphertext + ciphertext (same level, same scale).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.level(), b.level(), "HAdd level mismatch");
        Self::assert_scales_match(a.scale, b.scale);
        let mut c0 = a.c0.clone();
        c0.add_assign(&b.c0, &self.ctx);
        let mut c1 = a.c1.clone();
        c1.add_assign(&b.c1, &self.ctx);
        Ciphertext {
            c0,
            c1,
            scale: a.scale,
        }
    }

    /// Ciphertext − ciphertext.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.level(), b.level(), "HSub level mismatch");
        Self::assert_scales_match(a.scale, b.scale);
        let mut c0 = a.c0.clone();
        c0.sub_assign(&b.c0, &self.ctx);
        let mut c1 = a.c1.clone();
        c1.sub_assign(&b.c1, &self.ctx);
        Ciphertext {
            c0,
            c1,
            scale: a.scale,
        }
    }

    /// Negation.
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        let mut c0 = a.c0.clone();
        c0.neg_assign(&self.ctx);
        let mut c1 = a.c1.clone();
        c1.neg_assign(&self.ctx);
        Ciphertext {
            c0,
            c1,
            scale: a.scale,
        }
    }

    /// `PAdd`: ciphertext + plaintext.
    pub fn add_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(a.level(), p.level(), "PAdd level mismatch");
        Self::assert_scales_match(a.scale, p.scale);
        let mut m = p.poly.clone();
        m.to_eval(&self.ctx);
        m.special = None;
        let mut c0 = a.c0.clone();
        c0.add_assign(&m, &self.ctx);
        Ciphertext {
            c0,
            c1: a.c1.clone(),
            scale: a.scale,
        }
    }

    /// `PMult`: ciphertext × plaintext. Output scale is the product of
    /// scales; the caller usually rescales next.
    pub fn mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(a.level(), p.level(), "PMult level mismatch");
        let mut m = p.poly.clone();
        m.to_eval(&self.ctx);
        m.special = None;
        let c0 = a.c0.mul_pointwise(&m, &self.ctx);
        let c1 = a.c1.mul_pointwise(&m, &self.ctx);
        Ciphertext {
            c0,
            c1,
            scale: a.scale * p.scale,
        }
    }

    /// Multiplies by a scalar constant, encoding it at `aux_scale`
    /// (typically `q_ℓ` for the errorless path).
    pub fn mul_scalar(&self, a: &Ciphertext, v: f64, aux_scale: f64) -> Ciphertext {
        let n = self.ctx.degree();
        let mut coeffs = orion_math::arena::scratch_i128(n);
        coeffs[0] = (v * aux_scale).round() as i128;
        let mut poly = RnsPoly::from_signed(&self.ctx, &coeffs, a.level(), false);
        poly.to_eval(&self.ctx);
        self.mul_plain(
            a,
            &Plaintext {
                poly,
                scale: aux_scale,
            },
        )
    }

    /// The core key-switch: given `c` (evaluation form, no special limb) and
    /// a key for `s' → s`, returns `(B, A)` over the extended basis such
    /// that after ModDown `B + A·s ≈ c·s'`.
    ///
    /// This is the expensive primitive behind `HMult` and `HRot`
    /// (paper §2.5.2: "many NTTs and RNS basis conversions").
    pub fn key_switch_raw(&self, c: &RnsPoly, key: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        orion_telemetry::time_class(orion_telemetry::OpClass::KeySwitch, || {
            let ctx = &self.ctx;
            let digits = crate::hoist::decompose_digits(ctx, c);
            let (acc_b, acc_a) = key.inner_product(ctx, &digits);
            for digit in digits {
                digit.recycle();
            }
            (acc_b, acc_a)
        })
    }

    /// Full key-switch including the final ModDown.
    pub fn key_switch(&self, c: &RnsPoly, key: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        let (mut b, mut a) = self.key_switch_raw(c, key);
        b.mod_down_special_assign(&self.ctx);
        a.mod_down_special_assign(&self.ctx);
        (b, a)
    }

    /// `HMult` with relinearization. Output scale is the product; the
    /// caller usually rescales next.
    pub fn mul_relin(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.level(), b.level(), "HMult level mismatch");
        let ctx = &self.ctx;
        let d0 = a.c0.mul_pointwise(&b.c0, ctx);
        let mut d1 = a.c0.mul_pointwise(&b.c1, ctx);
        d1.add_assign(&a.c1.mul_pointwise(&b.c0, ctx), ctx);
        let d2 = a.c1.mul_pointwise(&b.c1, ctx);
        let (ks_b, ks_a) = self.key_switch(&d2, &self.keys.relin);
        let mut c0 = d0;
        c0.add_assign(&ks_b, ctx);
        let mut c1 = d1;
        c1.add_assign(&ks_a, ctx);
        Ciphertext {
            c0,
            c1,
            scale: a.scale * b.scale,
        }
    }

    /// Squares a ciphertext (one key-switch, like `HMult`).
    pub fn square(&self, a: &Ciphertext) -> Ciphertext {
        self.mul_relin(a, a)
    }

    /// Rescales in place: divides the scale by the top chain prime and
    /// drops one level (paper §2.5.2). Snaps the tracked scale to Δ when
    /// the result is within floating-point noise of it, preserving the
    /// errorless invariant exactly.
    pub fn rescale_assign(&self, ct: &mut Ciphertext) {
        orion_telemetry::time_class(orion_telemetry::OpClass::Rescale, || {
            let l = ct.level();
            assert!(l >= 1, "cannot rescale at level 0 — bootstrap required");
            let ql = self.ctx.moduli[l] as f64;
            ct.c0.rescale_assign(&self.ctx);
            ct.c1.rescale_assign(&self.ctx);
            let new_scale = ct.scale / ql;
            let delta = self.ctx.scale();
            ct.scale = if (new_scale / delta - 1.0).abs() < 1e-9 {
                delta
            } else {
                new_scale
            };
        })
    }

    /// Drops a ciphertext to a lower level without scaling (free level
    /// adjustment used by the level-management policy).
    pub fn drop_to_level(&self, ct: &mut Ciphertext, level: usize) {
        ct.c0.drop_to_level(level);
        ct.c1.drop_to_level(level);
    }

    /// Rescale fused with a drop to `out_level`: bit-identical to
    /// [`Evaluator::rescale_assign`] followed by
    /// [`Evaluator::drop_to_level`], but the limbs between `out_level` and
    /// `level − 1` are never folded or even NTT'd (see
    /// [`RnsPoly::rescale_to_level_assign`]). The scale bookkeeping is the
    /// rescale's: the divisor is still the *top* chain prime.
    pub fn rescale_to_level_assign(&self, ct: &mut Ciphertext, out_level: usize) {
        orion_telemetry::time_class(orion_telemetry::OpClass::Rescale, || {
            let l = ct.level();
            assert!(l >= 1, "cannot rescale at level 0 — bootstrap required");
            assert!(out_level < l, "fused rescale must lower the level");
            let ql = self.ctx.moduli[l] as f64;
            ct.c0.rescale_to_level_assign(&self.ctx, out_level);
            ct.c1.rescale_to_level_assign(&self.ctx, out_level);
            let new_scale = ct.scale / ql;
            let delta = self.ctx.scale();
            ct.scale = if (new_scale / delta - 1.0).abs() < 1e-9 {
                delta
            } else {
                new_scale
            };
        })
    }

    /// `HRot`: rotates slots "up" by `k` (slot `i` of the output holds slot
    /// `i+k` of the input), via the Galois automorphism and one key-switch.
    ///
    /// Panics if the rotation key was not generated; statically
    /// unreachable on verified plans (see [`Self::try_rotate`]).
    pub fn rotate(&self, ct: &Ciphertext, k: isize) -> Ciphertext {
        self.try_rotate(ct, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::rotate`] with a typed error on a missing rotation key, for
    /// callers that handle key coverage themselves instead of relying on
    /// pre-flight verification.
    pub fn try_rotate(
        &self,
        ct: &Ciphertext,
        k: isize,
    ) -> Result<Ciphertext, crate::keys::MissingRotationKey> {
        if k == 0 {
            return Ok(ct.clone());
        }
        let g = self.ctx.galois_element(k);
        let key = self.keys.try_rotation(g)?;
        let perm = self.ctx.galois_permutation(g);
        let sc0 = ct.c0.automorphism_eval(&perm);
        let sc1 = ct.c1.automorphism_eval(&perm);
        let (ks_b, ks_a) = self.key_switch(&sc1, key);
        let mut c0 = sc0;
        c0.add_assign(&ks_b, &self.ctx);
        Ok(Ciphertext {
            c0,
            c1: ks_a,
            scale: ct.scale,
        })
    }

    /// Complex conjugation of all slots (requires the conjugation key).
    pub fn conjugate(&self, ct: &Ciphertext) -> Ciphertext {
        let g = self.ctx.galois_element_conj();
        let key = self
            .keys
            .conj
            .as_ref()
            .expect("conjugation key not generated");
        let perm = self.ctx.galois_permutation(g);
        let sc0 = ct.c0.automorphism_eval(&perm);
        let sc1 = ct.c1.automorphism_eval(&perm);
        let (ks_b, ks_a) = self.key_switch(&sc1, key);
        let mut c0 = sc0;
        c0.add_assign(&ks_b, &self.ctx);
        Ciphertext {
            c0,
            c1: ks_a,
            scale: ct.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        ctx: Arc<Context>,
        enc: Encoder,
        encryptor: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        rng: StdRng,
    }

    fn setup(rotations: &[isize]) -> Harness {
        let ctx = Context::new(CkksParams::tiny());
        let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(21));
        let pk = Arc::new(kg.gen_public_key());
        let keys = Arc::new(kg.gen_eval_keys(rotations));
        let sk = kg.secret_key();
        Harness {
            ctx: ctx.clone(),
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::with_public_key(ctx.clone(), pk),
            dec: Decryptor::new(ctx.clone(), sk),
            eval: Evaluator::new(ctx, keys),
            rng: StdRng::seed_from_u64(22),
        }
    }

    fn ramp(h: &Harness) -> Vec<f64> {
        (0..h.ctx.slots())
            .map(|i| ((i % 16) as f64) * 0.25 - 2.0)
            .collect()
    }

    #[test]
    fn hadd_adds_slotwise() {
        let mut h = setup(&[]);
        let a = ramp(&h);
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let ca = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), 2, false), &mut h.rng);
        let cb = h
            .encryptor
            .encrypt(&h.enc.encode(&b, h.ctx.scale(), 2, false), &mut h.rng);
        let out = h.enc.decode(&h.dec.decrypt(&h.eval.add(&ca, &cb)));
        for i in 0..h.ctx.slots() {
            assert!((out[i] - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn pmult_rescale_is_errorless_in_scale() {
        let mut h = setup(&[]);
        let a = ramp(&h);
        let w: Vec<f64> = (0..h.ctx.slots()).map(|i| ((i % 5) as f64) * 0.1).collect();
        let level = 3;
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut h.rng);
        // Errorless path: weights at scale q_level.
        let pw = h.enc.encode_at_prime_scale(&w, level, false);
        let mut prod = h.eval.mul_plain(&ct, &pw);
        h.eval.rescale_assign(&mut prod);
        assert_eq!(prod.scale, h.ctx.scale(), "scale must return exactly to Δ");
        assert_eq!(prod.level(), level - 1);
        let out = h.enc.decode(&h.dec.decrypt(&prod));
        for i in 0..h.ctx.slots() {
            assert!(
                (out[i] - a[i] * w[i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                out[i],
                a[i] * w[i]
            );
        }
    }

    #[test]
    fn hmult_multiplies_slotwise() {
        let mut h = setup(&[]);
        let a = ramp(&h);
        let b: Vec<f64> = a.iter().map(|x| 0.5 - x * 0.25).collect();
        let level = 2;
        let ca = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut h.rng);
        let cb = h
            .encryptor
            .encrypt(&h.enc.encode(&b, h.ctx.scale(), level, false), &mut h.rng);
        let mut prod = h.eval.mul_relin(&ca, &cb);
        h.eval.rescale_assign(&mut prod);
        let out = h.enc.decode(&h.dec.decrypt(&prod));
        for i in (0..h.ctx.slots()).step_by(13) {
            assert!(
                (out[i] - a[i] * b[i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                out[i],
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn rotation_shifts_slots_up() {
        let mut h = setup(&[1, 5, -3]);
        let n = h.ctx.slots();
        let a: Vec<f64> = (0..n).map(|i| (i % 32) as f64 * 0.1).collect();
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), 1, false), &mut h.rng);
        for k in [1isize, 5, -3] {
            let out = h.enc.decode(&h.dec.decrypt(&h.eval.rotate(&ct, k)));
            for i in (0..n).step_by(17) {
                let src = (i as isize + k).rem_euclid(n as isize) as usize;
                assert!(
                    (out[i] - a[src]).abs() < 1e-2,
                    "k={k} slot {i}: {} vs {}",
                    out[i],
                    a[src]
                );
            }
        }
    }

    #[test]
    fn rotation_preserves_scale_and_level() {
        let mut h = setup(&[2]);
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&[1.0], h.ctx.scale(), 2, false), &mut h.rng);
        let rot = h.eval.rotate(&ct, 2);
        assert_eq!(rot.level(), ct.level());
        assert_eq!(rot.scale, ct.scale);
    }

    #[test]
    fn deep_multiplication_chain() {
        // Square repeatedly down to level 0: (x^2)^2 = x^4.
        let mut h = setup(&[]);
        let n = h.ctx.slots();
        let a: Vec<f64> = (0..n).map(|i| 0.5 + (i % 4) as f64 * 0.1).collect();
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), 2, false), &mut h.rng);
        let mut sq = h.eval.square(&ct);
        h.eval.rescale_assign(&mut sq);
        let mut q4 = h.eval.square(&sq);
        h.eval.rescale_assign(&mut q4);
        assert_eq!(q4.level(), 0);
        let out = h.enc.decode(&h.dec.decrypt(&q4));
        for i in (0..n).step_by(29) {
            assert!(
                (out[i] - a[i].powi(4)).abs() < 5e-2,
                "slot {i}: {} vs {}",
                out[i],
                a[i].powi(4)
            );
        }
    }

    #[test]
    fn mul_scalar_scales_values() {
        let mut h = setup(&[]);
        let a = ramp(&h);
        let level = 2;
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut h.rng);
        let ql = h.ctx.moduli[level] as f64;
        let mut out_ct = h.eval.mul_scalar(&ct, 0.125, ql);
        h.eval.rescale_assign(&mut out_ct);
        assert_eq!(out_ct.scale, h.ctx.scale());
        let out = h.enc.decode(&h.dec.decrypt(&out_ct));
        for i in (0..h.ctx.slots()).step_by(11) {
            assert!((out[i] - a[i] * 0.125).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "scales must match")]
    fn mismatched_scales_rejected() {
        let mut h = setup(&[]);
        let ca = h
            .encryptor
            .encrypt(&h.enc.encode(&[1.0], h.ctx.scale(), 1, false), &mut h.rng);
        let cb = h.encryptor.encrypt(
            &h.enc.encode(&[1.0], h.ctx.scale() * 2.0, 1, false),
            &mut h.rng,
        );
        let _ = h.eval.add(&ca, &cb);
    }

    #[test]
    fn level_drop_preserves_value() {
        let mut h = setup(&[]);
        let a = ramp(&h);
        let ct = h
            .encryptor
            .encrypt(&h.enc.encode(&a, h.ctx.scale(), 3, false), &mut h.rng);
        let mut dropped = ct.clone();
        h.eval.drop_to_level(&mut dropped, 1);
        assert_eq!(dropped.level(), 1);
        let out = h.enc.decode(&h.dec.decrypt(&dropped));
        for i in (0..h.ctx.slots()).step_by(19) {
            assert!((out[i] - a[i]).abs() < 1e-3);
        }
    }
}
