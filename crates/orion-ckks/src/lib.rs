//! A from-scratch RNS-CKKS implementation — the FHE substrate beneath Orion.
//!
//! This crate implements the scheme described in §2 of the Orion paper
//! (Cheon–Kim–Kim–Song over RNS, following the full-RNS variant):
//!
//! * [`params`] — parameter sets, the shared [`params::Context`] holding the
//!   modulus chain, NTT tables, encoder tables, and Galois permutations,
//! * [`poly`] — [`poly::RnsPoly`], polynomials in `Z_Q[X]/(X^N+1)` stored as
//!   RNS limbs in coefficient or evaluation form,
//! * [`encoder`] — cleartext ↔ plaintext conversion through the canonical
//!   embedding (paper §2.2), including *errorless* weight encoding at scale
//!   `q_j` (paper §6, Figure 7),
//! * [`keys`] — secret/public/relinearization/rotation keys; key-switching
//!   keys use per-limb digit decomposition with one special prime,
//! * [`encrypt`] — encryption (public or secret key) and decryption,
//! * [`eval`] — the homomorphic evaluator: `HAdd`, `PAdd`, `PMult`, `HMult`
//!   (+relinearize), rescaling, level drops, Galois rotations,
//! * [`hoist`] — hoisted rotations (shared digit decomposition) and the
//!   lazy-ModDown accumulator that implements double-hoisting (paper §3.3),
//! * [`bootstrap`] — the bootstrap substitute: a key-holding oracle that
//!   resets levels with bootstrap-faithful precision loss (see DESIGN.md),
//! * [`precision`] — output-precision measurement (paper §7, "Prec. (b)").
//!
//! # Security note
//!
//! Test/demo parameter sets here use reduced ring degrees (N = 2¹⁰…2¹³) so
//! the whole workspace runs in CI; they are **not** 128-bit secure. The
//! [`params::CkksParams::secure_n16`] preset matches the paper's deployment
//! scale.

pub mod bootstrap;
pub mod encoder;
pub mod encrypt;
pub mod eval;
pub mod hoist;
pub mod keys;
pub mod noise;
pub mod params;
pub mod poly;
pub mod precision;

pub use bootstrap::BootstrapOracle;
pub use encoder::Encoder;
pub use encrypt::{Ciphertext, Decryptor, Encryptor, Plaintext};
pub use eval::Evaluator;
pub use hoist::HoistedDigits;
pub use keys::{EvalKeys, KeyGenerator, MissingRotationKey, PublicKey, SecretKey};
pub use noise::{NoiseEstimate, NoiseEstimator};
pub use params::{CkksParams, Context};
