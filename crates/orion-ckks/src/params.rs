//! CKKS parameter sets and the shared evaluation context.

use orion_math::fft::SpecialFft;
use orion_math::ntt::NttTable;
use orion_math::primes::generate_ntt_primes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// User-facing CKKS parameters (paper Table 1).
#[derive(Clone, Debug)]
pub struct CkksParams {
    /// Power-of-two ring degree `N`.
    pub n: usize,
    /// `log2` of the scaling factor Δ.
    pub log_scale: u32,
    /// Bit size of the base modulus `q_0` (must exceed `log_scale` by the
    /// integer-part headroom of the messages).
    pub q0_bits: u32,
    /// Maximum multiplicative level `L` (the chain has `L + 1` primes).
    pub max_level: usize,
    /// Bit size of the special (key-switching) prime `p`.
    pub special_bits: u32,
    /// Gaussian error standard deviation.
    pub sigma: f64,
    /// Levels consumed by bootstrapping (`L_boot`, paper: 13–15); the
    /// bootstrap oracle refreshes ciphertexts to `L_eff = L − L_boot`.
    pub boot_levels: usize,
}

impl CkksParams {
    /// Tiny parameters for fast unit tests (N = 2¹⁰). Not secure.
    pub fn tiny() -> Self {
        Self {
            n: 1 << 10,
            log_scale: 30,
            q0_bits: 45,
            max_level: 4,
            special_bits: 45,
            sigma: 3.2,
            boot_levels: 2,
        }
    }

    /// Small demo parameters (N = 2¹², Δ = 2³⁵). Not secure.
    pub fn small() -> Self {
        Self {
            n: 1 << 12,
            log_scale: 35,
            q0_bits: 50,
            max_level: 8,
            special_bits: 50,
            sigma: 3.2,
            boot_levels: 3,
        }
    }

    /// Medium demo parameters (N = 2¹³, Δ = 2⁴⁰), used by the examples and
    /// the real-FHE MNIST runs. Not secure.
    pub fn medium() -> Self {
        Self {
            n: 1 << 13,
            log_scale: 40,
            q0_bits: 55,
            max_level: 12,
            special_bits: 55,
            sigma: 3.2,
            boot_levels: 4,
        }
    }

    /// Deployment-scale parameters matching the paper's evaluation
    /// (N = 2¹⁶, Δ ≈ 2⁴⁰, L_eff = 10 after a 14-level bootstrap). 128-bit
    /// secure by the homomorphic encryption standard tables; constructing
    /// the context is slow and is only exercised by ignored tests and the
    /// figure harnesses.
    pub fn secure_n16() -> Self {
        Self {
            n: 1 << 16,
            log_scale: 40,
            q0_bits: 60,
            max_level: 24,
            special_bits: 60,
            sigma: 3.2,
            boot_levels: 14,
        }
    }

    /// Number of plaintext slots (`N/2`, paper §2.2).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// `L_eff = L − L_boot`, the top level after bootstrapping.
    pub fn effective_level(&self) -> usize {
        self.max_level - self.boot_levels
    }

    /// Total bit length of `Q·p`, the quantity that (with `N`) determines
    /// security.
    pub fn log_qp(&self) -> u32 {
        self.q0_bits + self.log_scale * self.max_level as u32 + self.special_bits
    }

    /// A coarse security estimate from the homomorphic-encryption-standard
    /// tables (ternary secret, classical): the largest `log Q·p` considered
    /// 128-bit secure for each `N`. Returns `true` when the parameters are
    /// within the table bound.
    pub fn is_128_bit_secure(&self) -> bool {
        let bound = match self.n {
            0x2000 => 218,   // N = 2^13
            0x4000 => 438,   // N = 2^14
            0x8000 => 881,   // N = 2^15
            0x10000 => 1772, // N = 2^16
            0x20000 => 3576, // N = 2^17
            _ => 0,
        };
        (self.log_qp() as usize) <= bound
    }
}

/// The shared CKKS context: modulus chain, NTT tables, encoder FFT, and
/// Galois permutation caches. Cheap to clone (everything is `Arc`ed at the
/// call sites that need it); typically wrapped in `Arc<Context>`.
pub struct Context {
    /// The originating parameters.
    pub params: CkksParams,
    /// Modulus chain `q_0 … q_L` (index = level).
    pub moduli: Vec<u64>,
    /// The special key-switching prime `p`.
    pub special: u64,
    /// NTT tables, one per chain modulus (same index as `moduli`).
    pub ntt: Vec<NttTable>,
    /// NTT table for the special prime.
    pub ntt_special: NttTable,
    /// Encoder FFT tables over `N/2` slots.
    pub fft: SpecialFft,
    /// Evaluation-domain exponent map `e(i)` shared by all primes.
    exp_map: Vec<usize>,
    /// Inverse of the exponent map: `exp_index[e] = i` for odd `e`.
    exp_index: Vec<usize>,
    /// Cache of evaluation-domain permutations per Galois element.
    galois_perm: RwLock<HashMap<usize, Arc<Vec<usize>>>>,
    /// `q_ℓ⁻¹ mod q_j` for rescaling: `rescale_inv[l][j]`, j < l.
    rescale_inv: Vec<Vec<u64>>,
    /// `p⁻¹ mod q_j` for ModDown.
    special_inv: Vec<u64>,
}

impl Context {
    /// Builds the full context (prime search + NTT tables + encoder).
    pub fn new(params: CkksParams) -> Arc<Self> {
        let n = params.n;
        // q0 first, then L scale-sized primes, then the special prime.
        let q0 = generate_ntt_primes(n, params.q0_bits, 1, &[]);
        let mut scale_primes = generate_ntt_primes(n, params.log_scale, params.max_level, &q0);
        let mut moduli = q0;
        moduli.append(&mut scale_primes);
        let special = generate_ntt_primes(n, params.special_bits, 1, &moduli)[0];
        let ntt: Vec<NttTable> = moduli.iter().map(|&q| NttTable::new(n, q)).collect();
        let ntt_special = NttTable::new(n, special);
        let fft = SpecialFft::new(n / 2);
        let exp_map = ntt[0].exponent_map();
        debug_assert_eq!(
            exp_map,
            ntt_special.exponent_map(),
            "exponent map must be prime-independent"
        );
        let mut exp_index = vec![usize::MAX; 2 * n];
        for (i, &e) in exp_map.iter().enumerate() {
            exp_index[e] = i;
        }
        let rescale_inv: Vec<Vec<u64>> = (0..moduli.len())
            .map(|l| {
                (0..l)
                    .map(|j| orion_math::modular::inv_mod(moduli[l] % moduli[j], moduli[j]))
                    .collect()
            })
            .collect();
        let special_inv = moduli
            .iter()
            .map(|&q| orion_math::modular::inv_mod(special % q, q))
            .collect();
        Arc::new(Self {
            params,
            moduli,
            special,
            ntt,
            ntt_special,
            fft,
            exp_map,
            exp_index,
            galois_perm: RwLock::new(HashMap::new()),
            rescale_inv,
            special_inv,
        })
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.params.n
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.params.n / 2
    }

    /// Maximum level `L`.
    pub fn max_level(&self) -> usize {
        self.params.max_level
    }

    /// The scaling factor Δ.
    pub fn scale(&self) -> f64 {
        (self.params.log_scale as f64).exp2()
    }

    /// The Galois element for a cyclic slot rotation by `k` (may be
    /// negative): `5^k mod 2N`.
    pub fn galois_element(&self, k: isize) -> usize {
        let m = 2 * self.params.n;
        let order = self.params.n / 2; // order of 5 in the slot group
        let k = k.rem_euclid(order as isize) as u64;
        orion_math::modular::pow_mod(5, k, m as u64) as usize
    }

    /// The Galois element for complex conjugation: `2N − 1`.
    pub fn galois_element_conj(&self) -> usize {
        2 * self.params.n - 1
    }

    /// Evaluation-domain permutation for Galois element `g`: applying the
    /// automorphism `a(X) → a(X^g)` in the evaluation representation sends
    /// `new[i] = old[perm[i]]`.
    pub fn galois_permutation(&self, g: usize) -> Arc<Vec<usize>> {
        if let Some(p) = self.galois_perm.read().get(&g) {
            return p.clone();
        }
        let m = 2 * self.params.n;
        let perm: Vec<usize> = (0..self.params.n)
            .map(|i| self.exp_index[(self.exp_map[i] * g) % m])
            .collect();
        let arc = Arc::new(perm);
        self.galois_perm.write().insert(g, arc.clone());
        arc
    }

    /// `q_level⁻¹ mod q_j` (rescale constant).
    pub fn rescale_constant(&self, level: usize, j: usize) -> u64 {
        self.rescale_inv[level][j]
    }

    /// `p⁻¹ mod q_j` (ModDown constant).
    pub fn special_constant(&self, j: usize) -> u64 {
        self.special_inv[j]
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("n", &self.params.n)
            .field("levels", &self.moduli.len())
            .field("log_qp", &self.params.log_qp())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_tiny_context() {
        let ctx = Context::new(CkksParams::tiny());
        assert_eq!(ctx.moduli.len(), 5);
        assert_eq!(ctx.slots(), 512);
        for &q in &ctx.moduli {
            assert_eq!((q - 1) % (2 * ctx.degree() as u64), 0);
        }
        assert!(!ctx.moduli.contains(&ctx.special));
    }

    #[test]
    fn galois_elements_form_rotation_group() {
        let ctx = Context::new(CkksParams::tiny());
        let g1 = ctx.galois_element(1);
        assert_eq!(g1, 5);
        // rotation by 0 is identity
        assert_eq!(ctx.galois_element(0), 1);
        // rotation by -1 composed with +1 is identity mod 2N
        let gm1 = ctx.galois_element(-1);
        assert_eq!((g1 * gm1) % (2 * ctx.degree()), 1);
    }

    #[test]
    fn galois_permutation_is_bijective() {
        let ctx = Context::new(CkksParams::tiny());
        for k in [1isize, 3, -2] {
            let g = ctx.galois_element(k);
            let p = ctx.galois_permutation(g);
            let mut seen = vec![false; ctx.degree()];
            for &i in p.iter() {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn security_table() {
        assert!(CkksParams::secure_n16().is_128_bit_secure());
        assert!(!CkksParams::medium().is_128_bit_secure());
    }
}
