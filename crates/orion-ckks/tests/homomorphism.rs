//! Property-based homomorphism tests: for random cleartext vectors, the
//! decrypted results of homomorphic operations match the cleartext
//! semantics within the scheme's noise budget.

use orion_ckks::keys::KeyGenerator;
use orion_ckks::params::{CkksParams, Context};
use orion_ckks::{Decryptor, Encoder, Encryptor, Evaluator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct H {
    ctx: Arc<Context>,
    enc: Encoder,
    encryptor: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
}

fn harness() -> H {
    let ctx = Context::new(CkksParams::tiny());
    let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(0xC0FFEE));
    let pk = Arc::new(kg.gen_public_key());
    let keys = Arc::new(kg.gen_eval_keys(&[1, 2, 3, 5, 8]));
    let sk = kg.secret_key();
    H {
        enc: Encoder::new(ctx.clone()),
        encryptor: Encryptor::with_public_key(ctx.clone(), pk),
        dec: Decryptor::new(ctx.clone(), sk),
        eval: Evaluator::new(ctx.clone(), keys),
        ctx,
    }
}

fn vec_from_seed(h: &H, seed: u64, amp: f64) -> Vec<f64> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..h.ctx.slots())
        .map(|_| rng.gen_range(-amp..amp))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// decode(decrypt(HAdd(ct_a, ct_b))) ≈ a ⊕ b (paper §2.5.1).
    #[test]
    fn hadd_homomorphism(seed in 0u64..10_000) {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let a = vec_from_seed(&h, seed, 4.0);
        let b = vec_from_seed(&h, seed + 1, 4.0);
        let ca = h.encryptor.encrypt(&h.enc.encode(&a, h.ctx.scale(), 2, false), &mut rng);
        let cb = h.encryptor.encrypt(&h.enc.encode(&b, h.ctx.scale(), 2, false), &mut rng);
        let out = h.enc.decode(&h.dec.decrypt(&h.eval.add(&ca, &cb)));
        for i in (0..a.len()).step_by(41) {
            prop_assert!((out[i] - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    /// decode(decrypt(rescale(HMult(ct_a, ct_b)))) ≈ a ⊙ b (paper §2.5.2).
    #[test]
    fn hmult_homomorphism(seed in 0u64..10_000) {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let a = vec_from_seed(&h, seed + 2, 2.0);
        let b = vec_from_seed(&h, seed + 3, 2.0);
        let ca = h.encryptor.encrypt(&h.enc.encode(&a, h.ctx.scale(), 2, false), &mut rng);
        let cb = h.encryptor.encrypt(&h.enc.encode(&b, h.ctx.scale(), 2, false), &mut rng);
        let mut prod = h.eval.mul_relin(&ca, &cb);
        h.eval.rescale_assign(&mut prod);
        let out = h.enc.decode(&h.dec.decrypt(&prod));
        for i in (0..a.len()).step_by(53) {
            prop_assert!((out[i] - a[i] * b[i]).abs() < 1e-2, "{} vs {}", out[i], a[i] * b[i]);
        }
    }

    /// HRot_k then HRot_{-k} is the identity.
    #[test]
    fn rotation_inverse(seed in 0u64..10_000, k in prop::sample::select(vec![1isize, 2, 3, 5, 8])) {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let a = vec_from_seed(&h, seed + 4, 3.0);
        let ct = h.encryptor.encrypt(&h.enc.encode(&a, h.ctx.scale(), 1, false), &mut rng);
        let n = h.ctx.slots() as isize;
        let up = h.eval.rotate(&ct, k);
        let out = h.enc.decode(&h.dec.decrypt(&up));
        for i in (0..a.len()).step_by(67) {
            let src = (i as isize + k).rem_euclid(n) as usize;
            prop_assert!((out[i] - a[src]).abs() < 1e-2);
        }
    }

    /// PMult with the errorless prime-scale encoding returns exactly to Δ
    /// and computes a ⊙ w (paper §6, Figure 7).
    #[test]
    fn errorless_pmult(seed in 0u64..10_000, level in 1usize..4) {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(seed ^ 4);
        let a = vec_from_seed(&h, seed + 5, 2.0);
        let w = vec_from_seed(&h, seed + 6, 1.0);
        let ct = h.encryptor.encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut rng);
        let pt = h.enc.encode_at_prime_scale(&w, level, false);
        let mut out_ct = h.eval.mul_plain(&ct, &pt);
        h.eval.rescale_assign(&mut out_ct);
        prop_assert_eq!(out_ct.scale, h.ctx.scale());
        prop_assert_eq!(out_ct.level(), level - 1);
        let out = h.enc.decode(&h.dec.decrypt(&out_ct));
        for i in (0..a.len()).step_by(71) {
            prop_assert!((out[i] - a[i] * w[i]).abs() < 1e-2);
        }
    }

    /// The fused rescale-and-drop kernel is bit-identical to rescale
    /// followed by a level drop: per-limb rescale folds are independent,
    /// so truncating before folding changes nothing in the kept limbs.
    #[test]
    fn fused_rescale_matches_rescale_then_drop(seed in 0u64..10_000, out_level in 0usize..2) {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(seed ^ 6);
        let a = vec_from_seed(&h, seed + 9, 2.0);
        let w = vec_from_seed(&h, seed + 10, 1.0);
        let level = 2;
        let ct = h.encryptor.encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut rng);
        // rescale a PMult product so the top-limb fold is non-trivial
        let prod = h.eval.mul_plain(&ct, &h.enc.encode_at_prime_scale(&w, level, false));
        let mut split = prod.clone();
        h.eval.rescale_assign(&mut split);
        h.eval.drop_to_level(&mut split, out_level);
        let mut fused = prod;
        h.eval.rescale_to_level_assign(&mut fused, out_level);
        prop_assert_eq!(fused.level(), out_level);
        prop_assert_eq!(&fused.c0, &split.c0);
        prop_assert_eq!(&fused.c1, &split.c1);
        prop_assert_eq!(fused.scale.to_bits(), split.scale.to_bits());
    }

    /// Homomorphic linearity: c1·a + c2·b computed encrypted matches the
    /// cleartext affine combination.
    #[test]
    fn affine_combination(seed in 0u64..10_000, c1 in -2.0f64..2.0, c2 in -2.0f64..2.0) {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(seed ^ 5);
        let a = vec_from_seed(&h, seed + 7, 1.0);
        let b = vec_from_seed(&h, seed + 8, 1.0);
        let level = 2;
        let ql = h.ctx.moduli[level] as f64;
        let ca = h.encryptor.encrypt(&h.enc.encode(&a, h.ctx.scale(), level, false), &mut rng);
        let cb = h.encryptor.encrypt(&h.enc.encode(&b, h.ctx.scale(), level, false), &mut rng);
        let mut t1 = h.eval.mul_scalar(&ca, c1, ql);
        h.eval.rescale_assign(&mut t1);
        let mut t2 = h.eval.mul_scalar(&cb, c2, ql);
        h.eval.rescale_assign(&mut t2);
        let out = h.enc.decode(&h.dec.decrypt(&h.eval.add(&t1, &t2)));
        for i in (0..a.len()).step_by(83) {
            let expect = c1 * a[i] + c2 * b[i];
            prop_assert!((out[i] - expect).abs() < 1e-2, "{} vs {expect}", out[i]);
        }
    }
}
