//! Synthetic datasets (DESIGN.md §2: no dataset downloads; the paper's
//! FHE-vs-cleartext validation metric is preserved).

use orion_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random smooth "natural-ish" images: mixtures of Gaussian bumps per
/// channel, normalized to roughly `[-1, 1]`.
pub fn synthetic_images(c: usize, h: usize, w: usize, count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut t = Tensor::zeros(&[c, h, w]);
            for ch in 0..c {
                for _ in 0..4 {
                    let cy = rng.gen_range(0.0..h as f64);
                    let cx = rng.gen_range(0.0..w as f64);
                    let amp = rng.gen_range(-1.0..1.0);
                    let s2 = rng.gen_range(1.0..(h as f64 / 2.0)).powi(2);
                    for y in 0..h {
                        for x in 0..w {
                            let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                            t.data_mut()[(ch * h + y) * w + x] += amp * (-d2 / s2).exp();
                        }
                    }
                }
            }
            let m = t.max_abs().max(1e-9);
            t.map(|v| v / m)
        })
        .collect()
}

/// A labelled synthetic "digits" task: `classes` prototype patterns on a
/// `h × w` grid plus pixel noise. Linearly non-separable enough that the
/// MLP must actually learn, easy enough to reach high accuracy quickly.
pub struct Digits {
    /// Input images (1 × h × w).
    pub images: Vec<Tensor>,
    /// Labels in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

/// Generates the synthetic digits dataset.
pub fn synthetic_digits(h: usize, w: usize, classes: usize, count: usize, seed: u64) -> Digits {
    let mut rng = StdRng::seed_from_u64(seed);
    // Class prototypes: random fixed patterns.
    let protos: Vec<Vec<f64>> = (0..classes)
        .map(|_| (0..h * w).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let cls = i % classes;
        let data: Vec<f64> = protos[cls]
            .iter()
            .map(|&p| (p * 0.5 + rng.gen_range(-0.35..0.35)).clamp(-1.0, 1.0))
            .collect();
        images.push(Tensor::from_vec(&[1, h, w], data));
        labels.push(cls);
    }
    Digits {
        images,
        labels,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_normalized() {
        let imgs = synthetic_images(3, 16, 16, 5, 42);
        assert_eq!(imgs.len(), 5);
        for t in &imgs {
            assert!(t.max_abs() <= 1.0 + 1e-9);
            assert!(t.max_abs() > 0.5);
        }
    }

    #[test]
    fn digits_are_balanced() {
        let d = synthetic_digits(8, 8, 4, 40, 1);
        let mut counts = [0usize; 4];
        for &l in &d.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn digits_are_reproducible() {
        let a = synthetic_digits(8, 8, 3, 9, 7);
        let b = synthetic_digits(8, 8, 3, 9, 7);
        assert_eq!(a.images[0].data(), b.images[0].data());
    }
}
