//! The network zoo (paper Table 2).
//!
//! All builders take an [`Act`] selecting the activation family (the paper
//! evaluates ReLU \[15,15,27\] vs SiLU-127 on CIFAR-10 and SiLU on the
//! larger datasets) and an RNG for Kaiming weight initialization — weights
//! are synthetic (see DESIGN.md §2), but sizes track the paper's
//! "Params (M)" column.

use orion_nn::network::{Network, NodeId};
use rand::Rng;

/// Activation family for a model build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Act {
    /// ReLU via composite sign degrees \[15, 15, 27\].
    Relu,
    /// SiLU via a degree-127 Chebyshev polynomial.
    Silu,
    /// SiLU with a custom degree (latency/accuracy trade-off, §8.2).
    SiluDeg(usize),
    /// The `x²` activation (MNIST networks).
    Square,
}

impl Act {
    fn apply<R: Rng>(self, net: &mut Network, name: &str, prev: NodeId, _rng: &mut R) -> NodeId {
        match self {
            Act::Relu => net.relu(name, prev, &[15, 15, 27]),
            Act::Silu => net.silu(name, prev, 127),
            Act::SiluDeg(d) => net.silu(name, prev, d),
            Act::Square => net.square(name, prev),
        }
    }
}

/// Metadata for reporting (paper Table 2 columns).
#[derive(Clone, Debug)]
pub struct ModelInfo {
    /// Model name.
    pub name: String,
    /// Dataset / input size the paper pairs it with.
    pub dataset: &'static str,
    /// Input shape.
    pub input: (usize, usize, usize),
    /// Parameter count.
    pub params: usize,
    /// Multiply-accumulate count.
    pub flops: usize,
}

/// Builds a model by name:
/// `mlp`, `lola`, `lenet5`, `alexnet`, `vgg16`, `resnet20/32/44/56/110/1202`,
/// `resnet18`, `resnet34`, `resnet50`, `mobilenet`, `yolo_v1`.
pub fn build<R: Rng>(name: &str, act: Act, rng: &mut R) -> (Network, ModelInfo) {
    let net = match name {
        "mlp" => mlp(rng),
        "lola" => lola(rng),
        "lenet5" => lenet5(rng),
        "alexnet" => alexnet(act, rng),
        "vgg16" => vgg16(act, rng),
        "resnet20" => resnet_cifar(3, act, rng),
        "resnet32" => resnet_cifar(5, act, rng),
        "resnet44" => resnet_cifar(7, act, rng),
        "resnet56" => resnet_cifar(9, act, rng),
        "resnet110" => resnet_cifar(18, act, rng),
        "resnet1202" => resnet_cifar(200, act, rng),
        "resnet18" => resnet_imagenet(&[2, 2, 2, 2], false, 200, 64, act, rng),
        "resnet34" => resnet_imagenet(&[3, 4, 6, 3], false, 1000, 224, act, rng),
        "resnet50" => resnet_imagenet(&[3, 4, 6, 3], true, 1000, 224, act, rng),
        "mobilenet" => mobilenet_v1(act, rng),
        "yolo_v1" => yolo_v1(act, rng),
        other => panic!("unknown model {other}"),
    };
    let (c, h, w) = net.shape(net.input());
    let dataset = match name {
        "mlp" | "lola" | "lenet5" => "MNIST",
        "alexnet" | "vgg16" | "resnet20" | "resnet32" | "resnet44" | "resnet56" | "resnet110"
        | "resnet1202" => "CIFAR-10",
        "resnet18" | "mobilenet" => "Tiny ImageNet",
        "resnet34" | "resnet50" => "ImageNet",
        _ => "PASCAL-VOC",
    };
    let info = ModelInfo {
        name: name.to_string(),
        dataset,
        input: (c, h, w),
        params: net.param_count(),
        flops: net.flop_count(),
    };
    (net, info)
}

/// SecureML's 3-layer MLP: 784-128-128-10, square activations.
pub fn mlp<R: Rng>(rng: &mut R) -> Network {
    let mut net = Network::new(1, 28, 28);
    let x = net.input();
    let f = net.flatten("flat", x);
    let l1 = net.linear("fc1", f, 128, rng);
    let a1 = net.square("act1", l1);
    let l2 = net.linear("fc2", a1, 128, rng);
    let a2 = net.square("act2", l2);
    let l3 = net.linear("fc3", a2, 10, rng);
    net.output(l3);
    net
}

/// LoLA CryptoNets' 3-layer CNN: conv(5×5, stride 2) → square → fc →
/// square → fc.
pub fn lola<R: Rng>(rng: &mut R) -> Network {
    let mut net = Network::new(1, 28, 28);
    let x = net.input();
    let c1 = net.conv2d("conv1", x, 5, 5, 2, 2, 1, rng); // 5 maps, 14×14
    let a1 = net.square("act1", c1);
    let f = net.flatten("flat", a1);
    let l1 = net.linear("fc1", f, 100, rng);
    let a2 = net.square("act2", l1);
    let l2 = net.linear("fc2", a2, 10, rng);
    net.output(l2);
    net
}

/// The large LeNet-5 variant from CHET/EVA (~1.66 M parameters).
pub fn lenet5<R: Rng>(rng: &mut R) -> Network {
    let mut net = Network::new(1, 28, 28);
    let x = net.input();
    let c1 = net.conv2d("conv1", x, 32, 5, 1, 2, 1, rng);
    let a1 = net.square("act1", c1);
    let p1 = net.avg_pool2d("pool1", a1, 2, 2); // 14×14
    let c2 = net.conv2d("conv2", p1, 64, 5, 1, 2, 1, rng);
    let a2 = net.square("act2", c2);
    let p2 = net.avg_pool2d("pool2", a2, 2, 2); // 7×7
    let f = net.flatten("flat", p2);
    let l1 = net.linear("fc1", f, 512, rng);
    let a3 = net.square("act3", l1);
    let l2 = net.linear("fc2", a3, 10, rng);
    net.output(l2);
    net
}

/// CIFAR-10 AlexNet (~23 M parameters; the big classifier dominates).
pub fn alexnet<R: Rng>(act: Act, rng: &mut R) -> Network {
    let mut net = Network::new(3, 32, 32);
    let x = net.input();
    let mut cur = net.conv2d("conv1", x, 64, 3, 2, 1, 1, rng); // 16
    cur = net.batch_norm2d("bn1", cur);
    cur = act.apply(&mut net, "act1", cur, rng);
    cur = net.avg_pool2d("pool1", cur, 2, 2); // 8
    cur = net.conv2d("conv2", cur, 192, 3, 1, 1, 1, rng);
    cur = net.batch_norm2d("bn2", cur);
    cur = act.apply(&mut net, "act2", cur, rng);
    cur = net.avg_pool2d("pool2", cur, 2, 2); // 4
    cur = net.conv2d("conv3", cur, 384, 3, 1, 1, 1, rng);
    cur = act.apply(&mut net, "act3", cur, rng);
    cur = net.conv2d("conv4", cur, 256, 3, 1, 1, 1, rng);
    cur = act.apply(&mut net, "act4", cur, rng);
    cur = net.conv2d("conv5", cur, 256, 3, 1, 1, 1, rng);
    cur = act.apply(&mut net, "act5", cur, rng);
    cur = net.avg_pool2d("pool3", cur, 2, 2); // 2
    let f = net.flatten("flat", cur);
    let mut fc = net.linear("fc1", f, 4096, rng);
    fc = act.apply(&mut net, "act6", fc, rng);
    fc = net.linear("fc2", fc, 4096, rng);
    fc = act.apply(&mut net, "act7", fc, rng);
    fc = net.linear("fc3", fc, 10, rng);
    net.output(fc);
    net
}

/// CIFAR-10 VGG-16 (~14.7 M parameters).
pub fn vgg16<R: Rng>(act: Act, rng: &mut R) -> Network {
    let cfg: &[&[usize]] = &[
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    let mut net = Network::new(3, 32, 32);
    let mut cur = net.input();
    let mut idx = 0;
    for (b, block) in cfg.iter().enumerate() {
        for &ch in block.iter() {
            cur = net.conv2d(&format!("conv{idx}"), cur, ch, 3, 1, 1, 1, rng);
            cur = net.batch_norm2d(&format!("bn{idx}"), cur);
            cur = act.apply(&mut net, &format!("act{idx}"), cur, rng);
            idx += 1;
        }
        cur = net.avg_pool2d(&format!("pool{b}"), cur, 2, 2);
    }
    let f = net.flatten("flat", cur); // 512×1×1
    let fc = net.linear("fc", f, 10, rng);
    net.output(fc);
    net
}

fn basic_block<R: Rng>(
    net: &mut Network,
    name: &str,
    mut x: NodeId,
    co: usize,
    stride: usize,
    act: Act,
    rng: &mut R,
) -> NodeId {
    let input = x;
    let (ci, _, _) = net.shape(x);
    x = net.conv2d(&format!("{name}.conv1"), x, co, 3, stride, 1, 1, rng);
    x = net.batch_norm2d(&format!("{name}.bn1"), x);
    x = act.apply(net, &format!("{name}.act1"), x, rng);
    x = net.conv2d(&format!("{name}.conv2"), x, co, 3, 1, 1, 1, rng);
    x = net.batch_norm2d(&format!("{name}.bn2"), x);
    let shortcut = if stride != 1 || ci != co {
        let s = net.conv2d(&format!("{name}.down"), input, co, 1, stride, 0, 1, rng);
        net.batch_norm2d(&format!("{name}.downbn"), s)
    } else {
        input
    };
    let sum = net.add(&format!("{name}.add"), x, shortcut);
    act.apply(net, &format!("{name}.act2"), sum, rng)
}

fn bottleneck_block<R: Rng>(
    net: &mut Network,
    name: &str,
    mut x: NodeId,
    width: usize,
    stride: usize,
    act: Act,
    rng: &mut R,
) -> NodeId {
    let input = x;
    let (ci, _, _) = net.shape(x);
    let co = width * 4;
    x = net.conv2d(&format!("{name}.conv1"), x, width, 1, 1, 0, 1, rng);
    x = net.batch_norm2d(&format!("{name}.bn1"), x);
    x = act.apply(net, &format!("{name}.act1"), x, rng);
    x = net.conv2d(&format!("{name}.conv2"), x, width, 3, stride, 1, 1, rng);
    x = net.batch_norm2d(&format!("{name}.bn2"), x);
    x = act.apply(net, &format!("{name}.act2"), x, rng);
    x = net.conv2d(&format!("{name}.conv3"), x, co, 1, 1, 0, 1, rng);
    x = net.batch_norm2d(&format!("{name}.bn3"), x);
    let shortcut = if stride != 1 || ci != co {
        let s = net.conv2d(&format!("{name}.down"), input, co, 1, stride, 0, 1, rng);
        net.batch_norm2d(&format!("{name}.downbn"), s)
    } else {
        input
    };
    let sum = net.add(&format!("{name}.add"), x, shortcut);
    act.apply(net, &format!("{name}.act3"), sum, rng)
}

/// CIFAR ResNet family: depth = 6n + 2 (`n` blocks per stage).
pub fn resnet_cifar<R: Rng>(n: usize, act: Act, rng: &mut R) -> Network {
    let mut net = Network::new(3, 32, 32);
    let x = net.input();
    let mut cur = net.conv2d("conv1", x, 16, 3, 1, 1, 1, rng);
    cur = net.batch_norm2d("bn1", cur);
    cur = act.apply(&mut net, "act1", cur, rng);
    for (stage, (co, s0)) in [(16usize, 1usize), (32, 2), (64, 2)]
        .into_iter()
        .enumerate()
    {
        for b in 0..n {
            let stride = if b == 0 { s0 } else { 1 };
            cur = basic_block(
                &mut net,
                &format!("layer{}.{}", stage + 1, b),
                cur,
                co,
                stride,
                act,
                rng,
            );
        }
    }
    cur = net.global_avg_pool("gap", cur);
    let f = net.flatten("flat", cur);
    let fc = net.linear("fc", f, 10, rng);
    net.output(fc);
    net
}

/// ImageNet-style ResNet (18/34: basic blocks; 50: bottlenecks).
pub fn resnet_imagenet<R: Rng>(
    blocks: &[usize; 4],
    bottleneck: bool,
    classes: usize,
    input_hw: usize,
    act: Act,
    rng: &mut R,
) -> Network {
    let mut net = Network::new(3, input_hw, input_hw);
    let x = net.input();
    let mut cur = if input_hw >= 128 {
        let c = net.conv2d("conv1", x, 64, 7, 2, 3, 1, rng);
        let b = net.batch_norm2d("bn1", c);
        let a = act.apply(&mut net, "act1", b, rng);
        net.avg_pool2d_pad("pool1", a, 3, 2, 1)
    } else {
        // Tiny-ImageNet-style stem (64×64 inputs keep more resolution).
        let c = net.conv2d("conv1", x, 64, 3, 2, 1, 1, rng);
        let b = net.batch_norm2d("bn1", c);
        act.apply(&mut net, "act1", b, rng)
    };
    let widths = [64usize, 128, 256, 512];
    for (stage, (&n, &w)) in blocks.iter().zip(&widths).enumerate() {
        for b in 0..n {
            let stride = if b == 0 && stage > 0 { 2 } else { 1 };
            let name = format!("layer{}.{}", stage + 1, b);
            cur = if bottleneck {
                bottleneck_block(&mut net, &name, cur, w, stride, act, rng)
            } else {
                basic_block(&mut net, &name, cur, w, stride, act, rng)
            };
        }
    }
    cur = net.global_avg_pool("gap", cur);
    let f = net.flatten("flat", cur);
    let fc = net.linear("fc", f, classes, rng);
    net.output(fc);
    net
}

/// MobileNet-v1 for Tiny ImageNet (64×64), depthwise-separable convolutions.
pub fn mobilenet_v1<R: Rng>(act: Act, rng: &mut R) -> Network {
    let mut net = Network::new(3, 64, 64);
    let x = net.input();
    let mut cur = net.conv2d("conv1", x, 32, 3, 2, 1, 1, rng); // 32
    cur = net.batch_norm2d("bn1", cur);
    cur = act.apply(&mut net, "act1", cur, rng);
    // (channels, stride) of each depthwise-separable block
    let cfg: &[(usize, usize)] = &[
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(co, s)) in cfg.iter().enumerate() {
        let (ci, _, _) = net.shape(cur);
        // depthwise
        cur = net.conv2d(&format!("dw{i}"), cur, ci, 3, s, 1, ci, rng);
        cur = net.batch_norm2d(&format!("dwbn{i}"), cur);
        cur = act.apply(&mut net, &format!("dwact{i}"), cur, rng);
        // pointwise
        cur = net.conv2d(&format!("pw{i}"), cur, co, 1, 1, 0, 1, rng);
        cur = net.batch_norm2d(&format!("pwbn{i}"), cur);
        cur = act.apply(&mut net, &format!("pwact{i}"), cur, rng);
    }
    cur = net.global_avg_pool("gap", cur);
    let f = net.flatten("flat", cur);
    let fc = net.linear("fc", f, 200, rng);
    net.output(fc);
    net
}

/// YOLO-v1 with a ResNet-34 backbone on 448×448×3 (paper §8.6; ~139 M
/// parameters, the largest FHE inference reported).
pub fn yolo_v1<R: Rng>(act: Act, rng: &mut R) -> Network {
    let mut net = Network::new(3, 448, 448);
    let x = net.input();
    // ResNet-34 backbone (stem + 4 stages), ending 512×14×14.
    let mut cur = net.conv2d("conv1", x, 64, 7, 2, 3, 1, rng);
    cur = net.batch_norm2d("bn1", cur);
    cur = act.apply(&mut net, "act1", cur, rng);
    cur = net.avg_pool2d_pad("pool1", cur, 3, 2, 1); // 112
    let blocks = [3usize, 4, 6, 3];
    let widths = [64usize, 128, 256, 512];
    for (stage, (&n, &w)) in blocks.iter().zip(&widths).enumerate() {
        for b in 0..n {
            let stride = if b == 0 && stage > 0 { 2 } else { 1 };
            cur = basic_block(
                &mut net,
                &format!("layer{}.{}", stage + 1, b),
                cur,
                w,
                stride,
                act,
                rng,
            );
        }
    }
    // Detection head: two stride/size reductions to 7×7, then FCs to the
    // 7×7×30 prediction tensor.
    cur = net.conv2d("head.conv1", cur, 1024, 3, 2, 1, 1, rng); // 7×7
    cur = net.batch_norm2d("head.bn1", cur);
    cur = act.apply(&mut net, "head.act1", cur, rng);
    cur = net.conv2d("head.conv2", cur, 1024, 3, 1, 1, 1, rng);
    cur = net.batch_norm2d("head.bn2", cur);
    cur = act.apply(&mut net, "head.act2", cur, rng);
    let f = net.flatten("head.flat", cur); // 1024·7·7 = 50176
    let mut fc = net.linear("head.fc1", f, 2048, rng);
    fc = act.apply(&mut net, "head.act3", fc, rng);
    fc = net.linear("head.fc2", fc, 7 * 7 * 30, rng);
    net.output(fc);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params_m(name: &str) -> f64 {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, info) = build(name, Act::Silu, &mut rng);
        info.params as f64 / 1e6
    }

    #[test]
    fn mnist_model_sizes_match_paper() {
        // Paper Table 2: MLP 0.12M, LoLA 0.10M, LeNet 1.66M.
        assert!((params_m("mlp") - 0.12).abs() < 0.02, "{}", params_m("mlp"));
        assert!(
            (params_m("lola") - 0.10).abs() < 0.03,
            "{}",
            params_m("lola")
        );
        assert!(
            (params_m("lenet5") - 1.66).abs() < 0.3,
            "{}",
            params_m("lenet5")
        );
    }

    #[test]
    fn cifar_model_sizes_match_paper() {
        // AlexNet 23.3M, VGG-16 14.7M, ResNet-20 0.27M.
        assert!(
            (params_m("alexnet") - 23.3).abs() < 2.0,
            "{}",
            params_m("alexnet")
        );
        assert!(
            (params_m("vgg16") - 14.7).abs() < 1.0,
            "{}",
            params_m("vgg16")
        );
        assert!(
            (params_m("resnet20") - 0.27).abs() < 0.05,
            "{}",
            params_m("resnet20")
        );
    }

    #[test]
    fn large_model_sizes_match_paper() {
        // MobileNet 3.25M, ResNet-18 11.3M (200 classes).
        assert!(
            (params_m("mobilenet") - 3.25).abs() < 0.7,
            "{}",
            params_m("mobilenet")
        );
        assert!(
            (params_m("resnet18") - 11.3).abs() < 1.0,
            "{}",
            params_m("resnet18")
        );
    }

    #[test]
    fn resnet_depths() {
        let mut rng = StdRng::seed_from_u64(2);
        // ResNet-20 = 6·3+2 → 19 convs + downsamples + fc.
        let (net, _) = build("resnet20", Act::Relu, &mut rng);
        let convs = net
            .nodes
            .iter()
            .filter(|n| matches!(n.layer, orion_nn::layer::Layer::Conv2d { .. }))
            .count();
        // 1 stem + 18 block convs + 2 downsamples = 21
        assert_eq!(convs, 21);
    }

    #[test]
    fn cifar_resnet_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (net, _) = build("resnet20", Act::Silu, &mut rng);
        let out_shape = net.shape(net.output_node());
        assert_eq!(out_shape, (10, 1, 1));
    }

    #[test]
    fn mobilenet_uses_depthwise_convolutions() {
        let mut rng = StdRng::seed_from_u64(4);
        let (net, _) = build("mobilenet", Act::Silu, &mut rng);
        let depthwise = net
            .nodes
            .iter()
            .filter(
                |n| matches!(n.layer, orion_nn::layer::Layer::Conv2d { groups, .. } if groups > 1),
            )
            .count();
        assert_eq!(depthwise, 13);
    }

    #[test]
    fn yolo_is_the_largest_model() {
        let mut rng = StdRng::seed_from_u64(5);
        let (net, info) = build("yolo_v1", Act::Silu, &mut rng);
        // Paper: 139M parameters; ours lands in the same regime.
        assert!(info.params > 100_000_000, "{}", info.params);
        assert_eq!(net.shape(net.output_node()), (7 * 7 * 30, 1, 1));
    }
}
