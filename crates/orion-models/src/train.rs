//! A pure-Rust SGD trainer for the MLP benchmark.
//!
//! The paper validates accuracy parity between FHE and cleartext inference
//! (Table 2's "Clear Acc." vs "FHE Acc."). We reproduce this on the
//! synthetic digits task: train a square-activation MLP with plain SGD,
//! load its weights into an `orion_nn::Network`, and compare accuracies.

use crate::data::Digits;
use orion_nn::network::Network;
use orion_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Hidden width of both hidden layers.
    pub hidden: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 60,
            lr: 0.02,
            seed: 7,
        }
    }
}

struct Mat {
    rows: usize,
    cols: usize,
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Mat {
    fn new(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (1.0 / cols as f64).sqrt();
        Self {
            rows,
            cols,
            w: (0..rows * cols)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            b: vec![0.0; rows],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                self.b[r]
                    + self.w[r * self.cols..(r + 1) * self.cols]
                        .iter()
                        .zip(x)
                        .map(|(w, x)| w * x)
                        .sum::<f64>()
            })
            .collect()
    }
}

fn softmax(z: &[f64]) -> Vec<f64> {
    let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let e: Vec<f64> = z.iter().map(|&v| (v - m).exp()).collect();
    let s: f64 = e.iter().sum();
    e.into_iter().map(|v| v / s).collect()
}

/// Trains a `n_in → hidden → hidden → classes` MLP with `x²` activations
/// and returns it as an Orion network plus its training-set accuracy.
pub fn train_mlp(data: &Digits, cfg: TrainConfig) -> (Network, f64) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_in = data.images[0].len();
    let (h, classes) = (cfg.hidden, data.classes);
    let mut l1 = Mat::new(h, n_in, &mut rng);
    let mut l2 = Mat::new(h, h, &mut rng);
    let mut l3 = Mat::new(classes, h, &mut rng);
    let n = data.images.len();
    for _epoch in 0..cfg.epochs {
        for i in 0..n {
            let x = data.images[i].data();
            let y = data.labels[i];
            // forward
            let z1 = l1.forward(x);
            let a1: Vec<f64> = z1.iter().map(|v| v * v).collect();
            let z2 = l2.forward(&a1);
            let a2: Vec<f64> = z2.iter().map(|v| v * v).collect();
            let z3 = l3.forward(&a2);
            let p = softmax(&z3);
            // backward
            let mut dz3 = p;
            dz3[y] -= 1.0;
            let mut da2 = vec![0.0; h];
            for r in 0..classes {
                for c in 0..h {
                    da2[c] += l3.w[r * h + c] * dz3[r];
                }
            }
            let dz2: Vec<f64> = da2.iter().zip(&z2).map(|(d, z)| d * 2.0 * z).collect();
            let mut da1 = vec![0.0; h];
            for r in 0..h {
                for c in 0..h {
                    da1[c] += l2.w[r * h + c] * dz2[r];
                }
            }
            let dz1: Vec<f64> = da1.iter().zip(&z1).map(|(d, z)| d * 2.0 * z).collect();
            // SGD updates
            let lr = cfg.lr;
            for r in 0..classes {
                for c in 0..h {
                    l3.w[r * h + c] -= lr * dz3[r] * a2[c];
                }
                l3.b[r] -= lr * dz3[r];
            }
            for r in 0..h {
                for c in 0..h {
                    l2.w[r * h + c] -= lr * dz2[r] * a1[c];
                }
                l2.b[r] -= lr * dz2[r];
            }
            for r in 0..h {
                for c in 0..n_in {
                    l1.w[r * n_in + c] -= lr * dz1[r] * x[c];
                }
                l1.b[r] -= lr * dz1[r];
            }
        }
    }
    // Export into an Orion network.
    let (c, hh, ww) = {
        let s = data.images[0].shape();
        (s[0], s[1], s[2])
    };
    let mut net = Network::new(c, hh, ww);
    let x = net.input();
    let f = net.flatten("flat", x);
    let fc1 = net.linear_with("fc1", f, Tensor::from_vec(&[h, n_in], l1.w), l1.b);
    let a1 = net.square("act1", fc1);
    let fc2 = net.linear_with("fc2", a1, Tensor::from_vec(&[h, h], l2.w), l2.b);
    let a2 = net.square("act2", fc2);
    let fc3 = net.linear_with("fc3", a2, Tensor::from_vec(&[classes, h], l3.w), l3.b);
    net.output(fc3);
    let acc = accuracy(&net, data);
    (net, acc)
}

/// Classification accuracy of a network (exact cleartext forward).
pub fn accuracy(net: &Network, data: &Digits) -> f64 {
    let correct = data
        .images
        .iter()
        .zip(&data.labels)
        .filter(|(img, &label)| net.forward_exact(img).argmax() == label)
        .count();
    correct as f64 / data.images.len() as f64
}

/// Accuracy of arbitrary predicted outputs against the dataset labels.
pub fn accuracy_of_outputs(outputs: &[Tensor], data: &Digits) -> f64 {
    let correct = outputs
        .iter()
        .zip(&data.labels)
        .filter(|(o, &label)| o.argmax() == label)
        .count();
    correct as f64 / outputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_digits;

    #[test]
    fn mlp_learns_synthetic_digits() {
        let data = synthetic_digits(8, 8, 4, 80, 11);
        let (net, acc) = train_mlp(
            &data,
            TrainConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        assert!(acc > 0.9, "training failed: acc = {acc}");
        assert_eq!(net.shape(net.output_node()), (4, 1, 1));
    }

    #[test]
    fn untrained_network_is_near_chance() {
        let data = synthetic_digits(8, 8, 4, 80, 12);
        let (_, acc) = train_mlp(
            &data,
            TrainConfig {
                epochs: 0,
                ..Default::default()
            },
        );
        assert!(acc < 0.6, "untrained accuracy suspiciously high: {acc}");
    }
}
