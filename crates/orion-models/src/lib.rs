//! Model zoo and synthetic data: every network the paper evaluates
//! (Table 2), buildable with ReLU, SiLU, or `x²` activations.
//!
//! * [`zoo`] — MLP (SecureML), LoLA CNN, LeNet-5 (CHET's large variant),
//!   AlexNet and VGG-16 (CIFAR-10 variants), the CIFAR ResNet family
//!   (20/32/44/56/110/1202), ImageNet-style ResNet-18/34/50,
//!   MobileNet-v1, and YOLO-v1 with a ResNet-34 backbone;
//! * [`data`] — synthetic calibration / evaluation data (the repo has no
//!   MNIST/CIFAR/ImageNet downloads; see DESIGN.md §2 — the paper's
//!   validation metric, FHE-vs-cleartext precision, is preserved exactly);
//! * [`train`] — a pure-Rust SGD trainer for the MLP benchmark,
//!   demonstrating accuracy parity between cleartext and FHE inference on
//!   a learnable task.

pub mod data;
pub mod train;
pub mod zoo;

pub use zoo::{build, Act, ModelInfo};
