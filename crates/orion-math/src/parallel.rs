//! The shared limb-parallel engine.
//!
//! RNS-CKKS spends almost all of its time in loops that are independent
//! *per limb* (one residue vector per chain modulus): NTTs, pointwise
//! modular arithmetic, key-switch digit decomposition. This module is the
//! single place that decides when such a loop is worth fanning out onto
//! the shared rayon pool and runs it there, so callers (`orion-ckks`'s
//! `RnsPoly`, hoisting, the linear executors) never spawn threads
//! themselves.
//!
//! The gate matters: at the tiny test ring (N = 2¹⁰, ≤ 5 limbs) dispatch
//! overhead would dominate, so small workloads stay sequential and the
//! unit-test suite is unaffected. Demo rings (N ≥ 2¹²) and paper-scale
//! parameters clear the threshold and use every core.

use crate::ntt::NttTable;
use rayon::prelude::*;

/// Minimum total element count (`degree × limbs`) before a pointwise
/// limb loop is fanned out.
pub const PAR_POINTWISE_MIN: usize = 1 << 15;

/// Minimum ring degree before per-limb NTT batches are fanned out (an NTT
/// is `O(N log N)`, so it clears overhead at a smaller element count).
pub const PAR_NTT_MIN_DEGREE: usize = 1 << 12;

/// Whether a pointwise loop over `limbs` vectors of `degree` elements
/// should run in parallel.
pub fn pointwise_parallel(degree: usize, limbs: usize) -> bool {
    limbs >= 2 && degree * limbs >= PAR_POINTWISE_MIN && rayon::current_num_threads() > 1
}

/// Whether a batch of `limbs` NTTs of `degree` points should run in
/// parallel.
pub fn ntt_parallel(degree: usize, limbs: usize) -> bool {
    limbs >= 2 && degree >= PAR_NTT_MIN_DEGREE && rayon::current_num_threads() > 1
}

/// Runs `f(index, item)` over every item, in parallel when `parallel`.
pub fn for_each_mut<T, F>(items: &mut [T], parallel: bool, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if parallel {
        items.par_iter_mut().enumerate().for_each(|(i, x)| f(i, x));
    } else {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
    }
}

/// Runs `f(index, item, scratch)` over every item with a reusable scratch
/// buffer, so per-item allocations are hoisted out of hot loops: one
/// scratch per worker chunk in parallel mode, a single scratch for the
/// whole loop sequentially.
pub fn for_each_mut_scratch<T, S, I, F>(items: &mut [T], parallel: bool, init: I, f: F)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut T, &mut S) + Sync,
{
    if parallel && items.len() > 1 {
        let chunk = items.len().div_ceil(rayon::current_num_threads().max(1));
        items
            .par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, part)| {
                let mut scratch = init();
                for (k, x) in part.iter_mut().enumerate() {
                    f(ci * chunk + k, x, &mut scratch);
                }
            });
    } else {
        let mut scratch = init();
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x, &mut scratch);
        }
    }
}

/// Whether a batch of `n` independent coarse-grained jobs (e.g. plaintext
/// encodes at setup time) is worth fanning out.
pub fn batch_parallel(n: usize) -> bool {
    n >= 4 && rayon::current_num_threads() > 1
}

/// Builds a `Vec` from `f(0..n)`, in parallel when `parallel`. Order is
/// preserved either way.
pub fn map_indexed<T, F>(n: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if parallel {
        (0..n).into_par_iter().map(f).collect()
    } else {
        (0..n).map(f).collect()
    }
}

/// A spawn scope on the shared pool — see [`rayon::Scope`].
pub use rayon::Scope;

/// Runs `op` with a spawn [`Scope`] on the shared pool and waits (by
/// helping with queued work, not spin-sleeping) until every task spawned
/// on the scope has completed.
///
/// This is the pool's *event-driven* primitive, complementing the
/// fork-join shape of [`map_indexed`]: spawned tasks may borrow from the
/// caller's frame and may spawn further tasks onto the same scope, so a
/// completing task can enqueue its newly-ready successors directly — no
/// barrier between "waves" of work. A panic in any task is rethrown at
/// scope exit, after all spawned tasks have drained.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    rayon::scope(op)
}

/// Forward-NTTs every `(table, limb)` pair, fanning out across limbs when
/// the ring is large enough. Uses the lazy-reduction butterflies
/// (bit-identical to the strict path).
pub fn ntt_forward_batch(pairs: Vec<(&NttTable, &mut [u64])>) {
    orion_telemetry::time_class(orion_telemetry::OpClass::NttFwd, || {
        let degree = pairs.first().map(|(t, _)| t.n).unwrap_or(0);
        if ntt_parallel(degree, pairs.len()) {
            pairs.into_par_iter().for_each(|(t, a)| t.forward_lazy(a));
        } else {
            for (t, a) in pairs {
                t.forward_lazy(a);
            }
        }
    })
}

/// Inverse-NTTs every `(table, limb)` pair (see [`ntt_forward_batch`]).
pub fn ntt_inverse_batch(pairs: Vec<(&NttTable, &mut [u64])>) {
    orion_telemetry::time_class(orion_telemetry::OpClass::NttInv, || {
        let degree = pairs.first().map(|(t, _)| t.n).unwrap_or(0);
        if ntt_parallel(degree, pairs.len()) {
            pairs.into_par_iter().for_each(|(t, a)| t.inverse_lazy(a));
        } else {
            for (t, a) in pairs {
                t.inverse_lazy(a);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;

    #[test]
    fn gates_respect_thresholds() {
        // tiny test ring stays sequential
        assert!(!pointwise_parallel(1 << 10, 5));
        assert!(!ntt_parallel(1 << 10, 5));
        // single limb never parallelizes
        assert!(!ntt_parallel(1 << 13, 1));
    }

    #[test]
    fn ntt_batch_matches_sequential() {
        let n = 1 << 12; // above PAR_NTT_MIN_DEGREE → parallel path
        let primes = generate_ntt_primes(n, 45, 3, &[]);
        let tables: Vec<NttTable> = primes.iter().map(|&q| NttTable::new(n, q)).collect();
        let mk = |seed: u64| -> Vec<Vec<u64>> {
            tables
                .iter()
                .map(|t| (0..n as u64).map(|i| (i * i + seed) % t.q).collect())
                .collect()
        };
        let mut par = mk(7);
        let mut seq = mk(7);
        ntt_forward_batch(
            tables
                .iter()
                .zip(par.iter_mut().map(|v| &mut v[..]))
                .collect(),
        );
        for (t, a) in tables.iter().zip(seq.iter_mut()) {
            t.forward(a);
        }
        assert_eq!(par, seq);
        ntt_inverse_batch(
            tables
                .iter()
                .zip(par.iter_mut().map(|v| &mut v[..]))
                .collect(),
        );
        for (i, limb) in par.iter().enumerate() {
            let orig: Vec<u64> = (0..n as u64).map(|k| (k * k + 7) % tables[i].q).collect();
            assert_eq!(*limb, orig);
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        let v = map_indexed(100, true, |i| i * 3);
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_loop_matches_plain_loop_both_modes() {
        for parallel in [false, true] {
            let mut items: Vec<u64> = (0..97).collect();
            for_each_mut_scratch(&mut items, parallel, Vec::<u64>::new, |i, x, scratch| {
                scratch.clear();
                scratch.extend((0..4).map(|k| i as u64 + k));
                *x += scratch.iter().sum::<u64>();
            });
            let expect: Vec<u64> = (0..97u64).map(|i| i + 4 * i + 6).collect();
            assert_eq!(items, expect, "parallel={parallel}");
        }
    }

    #[test]
    fn batch_gate_needs_multiple_jobs() {
        assert!(!batch_parallel(1));
        assert!(!batch_parallel(3));
    }

    #[test]
    fn scope_drains_spawned_and_respawned_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                let hits = &hits;
                s.spawn(move |s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    // a task enqueues a successor, event-driven style
                    s.spawn(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }
}
