//! Complex arithmetic and the CKKS *special* FFT.
//!
//! CKKS encodes a vector of `n = N/2` complex slots into the coefficients
//! of a real polynomial via the canonical embedding restricted to one
//! element of each conjugate pair (paper §2.2). The transform below is the
//! classic HEAAN "special FFT": a radix-2 FFT whose twiddle indices follow
//! the orbit of 5 modulo 2N, which is exactly the ordering that makes the
//! Galois automorphism `X → X^5` act as a cyclic rotation by one slot.

/// A complex number (f64 re/im). Minimal on purpose — no external deps.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// e^{iθ}.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

fn bit_reverse_array(v: &mut [Complex]) {
    let n = v.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            v.swap(i, j);
        }
    }
}

/// The CKKS special FFT over `n` slots for ring degree `N = 2n`.
pub struct SpecialFft {
    /// Number of slots (power of two).
    pub n: usize,
    /// `M = 4n = 2N`.
    m: usize,
    /// `rot_group[i] = 5^i mod M`.
    rot_group: Vec<usize>,
    /// `ksi[k] = e^{2πik/M}` for `k ∈ [0, M]`.
    ksi: Vec<Complex>,
}

impl SpecialFft {
    /// Builds tables for `n` slots (so ring degree `2n`).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two());
        let m = 4 * n;
        let mut rot_group = Vec::with_capacity(n);
        let mut five = 1usize;
        for _ in 0..n {
            rot_group.push(five);
            five = (five * 5) % m;
        }
        let ksi: Vec<Complex> = (0..=m)
            .map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / m as f64))
            .collect();
        Self {
            n,
            m,
            rot_group,
            ksi,
        }
    }

    /// Forward transform (used in *decoding*: polynomial coefficients →
    /// slot values). In place.
    pub fn forward(&self, vals: &mut [Complex]) {
        let n = self.n;
        assert_eq!(vals.len(), n);
        bit_reverse_array(vals);
        let mut len = 2;
        while len <= n {
            let lenh = len >> 1;
            let lenq = len << 2;
            let gap = self.m / lenq;
            let mut i = 0;
            while i < n {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * gap;
                    let u = vals[i + j];
                    let v = vals[i + j + lenh] * self.ksi[idx];
                    vals[i + j] = u + v;
                    vals[i + j + lenh] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    /// Inverse transform (used in *encoding*: slot values → polynomial
    /// coefficients, before scaling/rounding). In place.
    pub fn inverse(&self, vals: &mut [Complex]) {
        let n = self.n;
        assert_eq!(vals.len(), n);
        let mut len = n;
        while len >= 1 {
            let lenh = len >> 1;
            let lenq = len << 2;
            let gap = self.m / lenq;
            let mut i = 0;
            while i < n {
                for j in 0..lenh {
                    let idx = ((lenq - (self.rot_group[j] % lenq)) % lenq) * gap;
                    let u = vals[i + j] + vals[i + j + lenh];
                    let v = (vals[i + j] - vals[i + j + lenh]) * self.ksi[idx];
                    vals[i + j] = u;
                    vals[i + j + lenh] = v;
                }
                i += len;
            }
            if len == 1 {
                break;
            }
            len >>= 1;
        }
        bit_reverse_array(vals);
        let scale = 1.0 / n as f64;
        for v in vals.iter_mut() {
            *v = *v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).norm_sqr().sqrt() < tol
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 16, 64, 256] {
            let fft = SpecialFft::new(n);
            let orig: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut v = orig.clone();
            fft.inverse(&mut v);
            fft.forward(&mut v);
            for (a, b) in v.iter().zip(&orig) {
                assert!(close(*a, *b, 1e-9), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn transform_is_linear() {
        let n = 32;
        let fft = SpecialFft::new(n);
        let a: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, (i % 3) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft.inverse(&mut fa);
        fft.inverse(&mut fb);
        fft.inverse(&mut fs);
        for i in 0..n {
            assert!(close(fs[i], fa[i] + fb[i], 1e-9));
        }
    }

    #[test]
    fn real_vector_gives_conjugate_symmetric_embedding() {
        // Encoding a real vector must produce coefficients whose forward
        // transform is again (approximately) real.
        let n = 64;
        let fft = SpecialFft::new(n);
        let mut v: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * i % 13) as f64, 0.0))
            .collect();
        fft.inverse(&mut v);
        fft.forward(&mut v);
        for c in &v {
            assert!(c.im.abs() < 1e-9);
        }
    }
}
