//! Mathematical substrates for Orion's RNS-CKKS implementation.
//!
//! This crate provides the low-level machinery the rest of the workspace is
//! built on:
//!
//! * [`modular`] — arithmetic over `u64` prime moduli (add/sub/mul/pow/inv
//!   via `u128` widening, centered reductions),
//! * [`primes`] — generation of NTT-friendly primes (`p ≡ 1 mod 2N`),
//! * [`ntt`] — negacyclic Number Theoretic Transform over each RNS prime,
//! * [`fft`] — complex FFT plus the CKKS *special* FFT used by the
//!   canonical-embedding encoder,
//! * [`rns`] — Residue Number System helpers (CRT reconstruction for tests,
//!   modulus-chain bookkeeping),
//! * [`parallel`] — the shared limb-parallel engine: gated rayon fan-out
//!   for per-limb NTT batches and pointwise RNS loops.
//!
//! Everything here is deterministic; NTT tables are precomputed once per
//! `(N, q)` pair and shared.
//!
//! The crate contains the workspace's only `unsafe` code (the SIMD kernel
//! layer in [`simd`]): every unsafe operation must sit in an explicit
//! `unsafe {}` block carrying a `// SAFETY:` comment stating its invariant
//! (lazy-range bound, pointer provenance, or feature detection) — enforced
//! by `deny(unsafe_op_in_unsafe_fn)` below and a CI grep.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod fft;
pub mod modular;
pub mod ntt;
pub mod parallel;
pub mod primes;
pub mod rns;
pub mod simd;

pub use fft::{Complex, SpecialFft};
pub use ntt::NttTable;
pub use primes::generate_ntt_primes;
