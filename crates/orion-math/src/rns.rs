//! Residue Number System helpers.
//!
//! RNS-CKKS represents each big-integer polynomial coefficient as its
//! residues modulo a chain of word-sized primes (paper §2.4). The scheme
//! itself never reconstructs big integers; CRT reconstruction here is
//! provided for tests and debugging (it uses `i128` accumulation and is
//! only exact while the product of moduli fits 127 bits, which covers the
//! 2–3 limb cases tests exercise).

use crate::modular::{inv_mod, Barrett};

/// A chain of RNS moduli `q_0, …, q_L` with cached pairwise data.
#[derive(Clone, Debug)]
pub struct ModulusChain {
    /// The moduli, index 0 first.
    pub moduli: Vec<u64>,
}

impl ModulusChain {
    /// Creates a chain; all moduli must be distinct primes.
    pub fn new(moduli: Vec<u64>) -> Self {
        let mut sorted = moduli.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), moduli.len(), "RNS moduli must be distinct");
        Self { moduli }
    }

    /// Number of limbs.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// True when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// `(Q_ℓ / q_i)⁻¹ mod q_i` for the sub-chain `q_0..=q_ℓ`; the classic
    /// CRT "hat inverse" used to build key-switching gadget constants.
    pub fn hat_inv(&self, i: usize, level: usize) -> u64 {
        let qi = self.moduli[i];
        let br = Barrett::new(qi);
        let mut prod = 1u64;
        for (j, &qj) in self.moduli.iter().enumerate().take(level + 1) {
            if j != i {
                prod = br.mul_mod(prod, br.reduce_u64(qj));
            }
        }
        inv_mod(prod, qi)
    }

    /// `(Q_L / q_i) mod m` for an arbitrary modulus `m` (e.g. the special
    /// prime): the product of every other limb reduced mod `m`.
    pub fn hat_mod(&self, i: usize, level: usize, m: u64) -> u64 {
        let br = Barrett::new(m);
        let mut prod = 1u64;
        for (j, &qj) in self.moduli.iter().enumerate().take(level + 1) {
            if j != i {
                prod = br.mul_mod(prod, br.reduce_u64(qj));
            }
        }
        prod
    }
}

/// Reconstructs the centered value of an RNS residue vector over the first
/// `limbs.len()` moduli of `chain`, as an `i128`.
///
/// Exact only while `∏ q_i < 2¹²⁶`; intended for tests with ≤ 2 limbs of
/// ≤ 60 bits (or more, smaller limbs).
pub fn crt_reconstruct_centered(limbs: &[u64], moduli: &[u64]) -> i128 {
    assert_eq!(limbs.len(), moduli.len());
    let mut q_prod: i128 = 1;
    for &m in moduli {
        q_prod = q_prod
            .checked_mul(m as i128)
            .expect("CRT overflow: too many limbs");
    }
    let mut acc: i128 = 0;
    for (i, (&r, &qi)) in limbs.iter().zip(moduli).enumerate() {
        let _ = i;
        let qhat = q_prod / qi as i128;
        // (qhat)^{-1} mod qi
        let qhat_mod_qi = (qhat % qi as i128) as u64;
        let inv = inv_mod(qhat_mod_qi, qi) as i128;
        let term = (r as i128 % qi as i128) * inv % qi as i128;
        acc = (acc + qhat % q_prod * term) % q_prod;
    }
    acc = acc.rem_euclid(q_prod);
    if acc > q_prod / 2 {
        acc - q_prod
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mul_mod;
    use crate::primes::generate_ntt_primes;

    #[test]
    fn crt_roundtrip_small() {
        let moduli = [97u64, 101, 103];
        for x in [-5000i128, -1, 0, 1, 424242, -300000] {
            let limbs: Vec<u64> = moduli
                .iter()
                .map(|&q| x.rem_euclid(q as i128) as u64)
                .collect();
            assert_eq!(crt_reconstruct_centered(&limbs, &moduli), x);
        }
    }

    #[test]
    fn hat_inv_property() {
        let moduli = generate_ntt_primes(64, 40, 4, &[]);
        let chain = ModulusChain::new(moduli.clone());
        let level = 3;
        for i in 0..=level {
            let hi = chain.hat_inv(i, level);
            // (Q/qi mod qi) * hat_inv ≡ 1 mod qi
            let mut prod = 1u64;
            for j in 0..=level {
                if j != i {
                    prod = mul_mod(prod, moduli[j] % moduli[i], moduli[i]);
                }
            }
            assert_eq!(mul_mod(prod, hi, moduli[i]), 1);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_moduli_rejected() {
        ModulusChain::new(vec![97, 97]);
    }
}
