//! Thread-local scratch arenas for limb-sized buffers.
//!
//! RNS kernels allocate the same few shapes over and over: `vec![0u64; N]`
//! limb vectors (one per chain modulus, per temporary polynomial) and
//! `vec![0i128; N]` centered-lift scratch. At paper-scale rings those are
//! hundreds of kilobytes each, so the allocator — and the page faults of
//! freshly-mapped zero pages — shows up squarely in rescale / ModDown /
//! key-switch profiles. This module recycles them instead.
//!
//! ## Ownership rules
//!
//! * Each worker thread owns an independent freelist (a `thread_local!`),
//!   so takes and recycles are lock-free. A buffer recycled on a different
//!   thread than it was taken from is *safe* — the arena is purely a
//!   cache — it just seeds that thread's freelist instead.
//! * [`take_u64`] / [`take_i128`] return zeroed buffers of exactly the
//!   requested length; [`take_u64_raw`] / [`take_i128_raw`] skip the zero
//!   fill and may return **stale contents** — callers must overwrite every
//!   element before reading.
//! * Returning a buffer is optional (dropping it is just a deallocation)
//!   and always correct: buffers are keyed by length, and a freelist keeps
//!   at most [`MAX_BUFS_PER_LEN`] buffers per length and
//!   [`MAX_RETAINED_BYTES`] bytes in total, so the cache cannot grow
//!   without bound.
//! * The RAII guards ([`ScratchU64`], [`ScratchI128`]) recycle on drop and
//!   are the right tool for scratch that never escapes the caller; use the
//!   explicit `take_*`/`recycle_*` pair when the buffer is moved into a
//!   longer-lived structure (e.g. an `RnsPoly` limb).

use std::cell::RefCell;
use std::collections::HashMap;

/// Maximum buffers retained per distinct length, per thread.
pub const MAX_BUFS_PER_LEN: usize = 64;

/// Maximum bytes retained per element type, per thread (64 MiB).
pub const MAX_RETAINED_BYTES: usize = 64 << 20;

/// Reuse statistics of one thread's pool (for tests and diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Takes served from the freelist.
    pub hits: u64,
    /// Takes that fell through to a fresh allocation.
    pub misses: u64,
    /// Bytes currently parked in the freelist.
    pub retained_bytes: usize,
}

struct Pool<T> {
    by_len: HashMap<usize, Vec<Vec<T>>>,
    stats: ArenaStats,
}

impl<T: Copy + Default> Pool<T> {
    fn new() -> Self {
        Self {
            by_len: HashMap::new(),
            stats: ArenaStats::default(),
        }
    }

    fn take(&mut self, n: usize, zero: bool) -> Vec<T> {
        if let Some(mut buf) = self.by_len.get_mut(&n).and_then(Vec::pop) {
            self.stats.retained_bytes -= n * std::mem::size_of::<T>();
            self.stats.hits += 1;
            debug_assert_eq!(buf.len(), n);
            if zero {
                buf.fill(T::default());
            }
            return buf;
        }
        self.stats.misses += 1;
        // A fresh `vec![0; n]` is already zeroed, so `zero` is free here.
        vec![T::default(); n]
    }

    fn put(&mut self, buf: Vec<T>) {
        let n = buf.len();
        let bytes = n * std::mem::size_of::<T>();
        if n == 0 || self.stats.retained_bytes + bytes > MAX_RETAINED_BYTES {
            return;
        }
        let list = self.by_len.entry(n).or_default();
        if list.len() >= MAX_BUFS_PER_LEN {
            return;
        }
        list.push(buf);
        self.stats.retained_bytes += bytes;
    }
}

thread_local! {
    static U64_POOL: RefCell<Pool<u64>> = RefCell::new(Pool::new());
    static I128_POOL: RefCell<Pool<i128>> = RefCell::new(Pool::new());
}

/// Takes a zeroed `Vec<u64>` of length `n` from this thread's pool.
pub fn take_u64(n: usize) -> Vec<u64> {
    U64_POOL.with(|p| p.borrow_mut().take(n, true))
}

/// Takes a `Vec<u64>` of length `n` whose contents may be stale; the
/// caller must overwrite every element before reading.
pub fn take_u64_raw(n: usize) -> Vec<u64> {
    U64_POOL.with(|p| p.borrow_mut().take(n, false))
}

/// Returns a `u64` buffer to this thread's pool for reuse.
pub fn recycle_u64(buf: Vec<u64>) {
    U64_POOL.with(|p| p.borrow_mut().put(buf));
}

/// Takes a zeroed `Vec<i128>` of length `n` from this thread's pool.
pub fn take_i128(n: usize) -> Vec<i128> {
    I128_POOL.with(|p| p.borrow_mut().take(n, true))
}

/// Takes a stale-content `Vec<i128>` of length `n` (see [`take_u64_raw`]).
pub fn take_i128_raw(n: usize) -> Vec<i128> {
    I128_POOL.with(|p| p.borrow_mut().take(n, false))
}

/// Returns an `i128` buffer to this thread's pool for reuse.
pub fn recycle_i128(buf: Vec<i128>) {
    I128_POOL.with(|p| p.borrow_mut().put(buf));
}

/// This thread's `u64` pool statistics.
pub fn stats_u64() -> ArenaStats {
    U64_POOL.with(|p| p.borrow().stats)
}

/// This thread's `i128` pool statistics.
pub fn stats_i128() -> ArenaStats {
    I128_POOL.with(|p| p.borrow().stats)
}

macro_rules! scratch_guard {
    ($name:ident, $elem:ty, $take:ident, $take_raw:ident, $recycle:ident,
     $ctor:ident, $ctor_raw:ident) => {
        /// RAII arena scratch: derefs to the underlying `Vec` and recycles
        /// it on drop. Length changes (`clear`/`extend`) are fine — the
        /// buffer is re-keyed by its final length when returned.
        pub struct $name {
            buf: Vec<$elem>,
        }

        /// Takes a zeroed scratch guard of length `n`.
        pub fn $ctor(n: usize) -> $name {
            $name { buf: $take(n) }
        }

        /// Takes a stale-content scratch guard of length `n`; overwrite
        /// every element before reading.
        pub fn $ctor_raw(n: usize) -> $name {
            $name { buf: $take_raw(n) }
        }

        impl std::ops::Deref for $name {
            type Target = Vec<$elem>;
            fn deref(&self) -> &Vec<$elem> {
                &self.buf
            }
        }

        impl std::ops::DerefMut for $name {
            fn deref_mut(&mut self) -> &mut Vec<$elem> {
                &mut self.buf
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                $recycle(std::mem::take(&mut self.buf));
            }
        }
    };
}

scratch_guard!(
    ScratchU64,
    u64,
    take_u64,
    take_u64_raw,
    recycle_u64,
    scratch_u64,
    scratch_u64_raw
);
scratch_guard!(
    ScratchI128,
    i128,
    take_i128,
    take_i128_raw,
    recycle_i128,
    scratch_i128,
    scratch_i128_raw
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_dirty_recycle() {
        let mut b = take_u64(257);
        assert!(b.iter().all(|&x| x == 0));
        b.iter_mut().for_each(|x| *x = 0xdead_beef);
        recycle_u64(b);
        let b2 = take_u64(257);
        assert!(b2.iter().all(|&x| x == 0), "recycled buffer must be zeroed");
        recycle_u64(b2);
    }

    #[test]
    fn raw_take_reuses_without_zeroing_cost() {
        let mut b = take_i128(31);
        b[0] = 42;
        recycle_i128(b);
        let before = stats_i128();
        let b2 = take_i128_raw(31);
        let after = stats_i128();
        assert_eq!(after.hits, before.hits + 1, "raw take must hit the pool");
        assert_eq!(b2.len(), 31);
        recycle_i128(b2);
    }

    #[test]
    fn lengths_do_not_mix() {
        recycle_u64(vec![7u64; 16]);
        let b = take_u64_raw(32);
        assert_eq!(b.len(), 32);
    }

    #[test]
    fn guard_recycles_on_drop() {
        let before = stats_u64();
        {
            let mut s = scratch_u64(999);
            s[3] = 1;
        }
        let s2 = scratch_u64_raw(999);
        assert_eq!(s2.len(), 999);
        let after = stats_u64();
        assert!(after.hits > before.hits, "guard drop must feed the pool");
    }

    #[test]
    fn retention_caps_hold() {
        // Flooding the pool with one length must not retain more than the
        // per-length cap.
        for _ in 0..(MAX_BUFS_PER_LEN * 2) {
            recycle_u64(vec![0u64; 128]);
        }
        let retained = stats_u64().retained_bytes;
        assert!(retained <= MAX_RETAINED_BYTES);
        let mut hits = 0;
        for _ in 0..(MAX_BUFS_PER_LEN * 2) {
            let before = stats_u64().hits;
            let b = take_u64_raw(128);
            if stats_u64().hits > before {
                hits += 1;
            }
            drop(b); // do not recycle — drain the pool
        }
        assert!(hits <= MAX_BUFS_PER_LEN, "per-length cap exceeded: {hits}");
    }
}
