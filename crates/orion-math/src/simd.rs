//! Vectorized kernel layer with runtime CPU dispatch.
//!
//! Every hot inner loop in Orion — NTT butterflies, Shoup pointwise
//! multiplies, and the key-switch digit accumulation — funnels through the
//! [`Kernels`] table of function pointers. The table is chosen **once per
//! process** (the same pattern as the rayon-pool thread-count env read):
//!
//! * `ORION_SIMD` unset → auto-detect: AVX2 on x86-64 CPUs that have it,
//!   the portable 4-wide unrolled scalar path everywhere else.
//! * `ORION_SIMD=force` → require the accelerated path (panics on x86-64
//!   without AVX2; on other architectures the scalar path *is* the
//!   accelerated path).
//! * `ORION_SIMD=off` → scalar, for A/B testing and bit-exactness gates.
//!
//! Both variants stay reachable in-process via [`scalar`] and [`avx2`] so
//! proptests can pin bit-exactness and benches can measure the ratio
//! without re-exec'ing under a different environment.
//!
//! # Lazy-form invariants
//!
//! | kernel              | accepts            | emits        |
//! |---------------------|--------------------|--------------|
//! | `ntt_fwd_lazy`      | `[0, q)`           | `[0, q)` (internal stages `[0, 4q)`) |
//! | `ntt_inv_lazy`      | `[0, q)`           | `[0, q)` (internal stages `[0, 2q)`) |
//! | `ks_accum`          | digits `[0, q)`    | `[0, q)` (accumulator held `[0, 2q)`, transiently `[0, 4q)`) |
//! | everything else     | `[0, q)`           | `[0, q)`     |
//!
//! The fused key-switch accumulator is safe at any digit count: each lazy
//! Shoup product lands in `[0, 2q)`, the running sum is conditionally
//! reduced back under `2q` after every digit, so the transient peak is
//! `< 4q < 2⁶⁴` regardless of how many gadget digits are folded in.

use crate::modular::{mul_mod_shoup, mul_mod_shoup_lazy, Barrett};
use std::sync::OnceLock;

/// Constants for the folded final stage of the inverse NTT: the plain N⁻¹
/// scaling and N⁻¹ pre-multiplied into the last-stage twiddle
/// (`s_n_inv = ψ⁻¹_brv[1]·N⁻¹ mod q`).
#[derive(Clone, Copy, Debug)]
pub struct InvScale {
    pub n_inv: u64,
    pub n_inv_shoup: u64,
    pub s_n_inv: u64,
    pub s_n_inv_shoup: u64,
}

/// One dispatch class: a full table of kernel entry points. All variants
/// are bit-identical for in-range inputs; only the instruction mix differs.
pub struct Kernels {
    /// Dispatch-class label surfaced in telemetry and bench artifacts.
    pub name: &'static str,
    /// Whole-transform lazy forward NTT, final full-reduction sweep folded
    /// into the last butterfly stage. `(a, psi_brv, psi_brv_shoup, q)`.
    pub ntt_fwd_lazy: fn(&mut [u64], &[u64], &[u64], u64),
    /// Whole-transform lazy inverse NTT, N⁻¹ scaling folded into the last
    /// stage. `(a, inv_psi_brv, inv_psi_brv_shoup, scale, q)`.
    pub ntt_inv_lazy: fn(&mut [u64], &[u64], &[u64], InvScale, u64),
    /// `a[i] = (a[i] + b[i]) mod q`
    pub add_assign: fn(&mut [u64], &[u64], u64),
    /// `a[i] = (a[i] - b[i]) mod q`
    pub sub_assign: fn(&mut [u64], &[u64], u64),
    /// `a[i] = (-a[i]) mod q`
    pub neg_assign: fn(&mut [u64], u64),
    /// `dst[i] = a[i]·b[i] mod q` (Barrett; both operands variable)
    pub mul_pointwise: fn(&mut [u64], &[u64], &[u64], u64),
    /// `dst[i] = (dst[i] + a[i]·b[i]) mod q`
    pub add_mul: fn(&mut [u64], &[u64], &[u64], u64),
    /// `a[i] = a[i]·s mod q` with `s_shoup` precomputed
    pub scalar_mul_assign: fn(&mut [u64], u64, u64, u64),
    /// `a[i] = (a[i] - b[i])·s mod q` (the rescale fold) with Shoup `s`
    pub sub_mul_assign: fn(&mut [u64], &[u64], u64, u64, u64),
    /// `dst[i] = src[i] mod q` for arbitrary `u64` inputs
    pub mod_reduce: fn(&mut [u64], &[u64], u64),
    /// `dst[i] = center(src[i], src_q) mod dst_q`: the centered base-change
    /// step of rescale/ModDown, without materializing an `i128` lift.
    /// `(dst, src, src_q, dst_q)`.
    pub centered_reduce: fn(&mut [u64], &[u64], u64, u64),
    /// Fused key-switch inner product: `dst[i] = (dst[i] + Σ_d
    /// digits[d][i]·keys[d][i]) mod q`, accumulator kept lazy across all
    /// gadget digits, one full reduction per element at the end.
    /// `(dst, digits, keys, key_shoups, q)`; `dst` must be in `[0, q)`.
    pub ks_accum: KsAccumFn,
}

/// Signature of the fused key-switch accumulation kernel:
/// `(dst, digits, keys, key_shoups, q)`.
pub type KsAccumFn = fn(&mut [u64], &[&[u64]], &[&[u64]], &[&[u64]], u64);

/// The portable scalar table (4-wide unrolled loops; NEON-friendly shapes
/// that LLVM auto-vectorizes on aarch64).
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// The AVX2 table, or `None` when the CPU (or target) lacks AVX2. The
/// returned table is safe to call: availability has been verified here.
pub fn avx2() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(&avx2_impl::AVX2);
        }
    }
    None
}

/// Every dispatch class available on this host, for equivalence tests and
/// simd-vs-scalar benches.
pub fn variants() -> Vec<&'static Kernels> {
    let mut v = vec![scalar()];
    if let Some(k) = avx2() {
        v.push(k);
    }
    v
}

/// The process-wide kernel table, chosen once from `ORION_SIMD` + CPU
/// detection and cached (fn-pointer table behind a `OnceLock`, mirroring
/// the rayon-pool env read).
pub fn kernels() -> &'static Kernels {
    static CHOSEN: OnceLock<&'static Kernels> = OnceLock::new();
    CHOSEN.get_or_init(|| {
        let k = match std::env::var("ORION_SIMD").as_deref() {
            Ok("off") => scalar(),
            Ok("force") => {
                if cfg!(target_arch = "x86_64") {
                    avx2().expect(
                        "ORION_SIMD=force: this x86-64 CPU does not support AVX2; \
                         unset ORION_SIMD or set ORION_SIMD=off",
                    )
                } else {
                    // Off x86-64 the unrolled scalar path is the
                    // accelerated path; force is satisfied trivially.
                    scalar()
                }
            }
            _ => avx2().unwrap_or_else(scalar),
        };
        orion_telemetry::set_kernel_dispatch(k.name);
        k
    })
}

/// Label of the process-wide dispatch class (`"avx2"` or `"scalar"`).
pub fn dispatch_name() -> &'static str {
    kernels().name
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    ntt_fwd_lazy: scalar_impl::ntt_fwd_lazy,
    ntt_inv_lazy: scalar_impl::ntt_inv_lazy,
    add_assign: scalar_impl::add_assign,
    sub_assign: scalar_impl::sub_assign,
    neg_assign: scalar_impl::neg_assign,
    mul_pointwise: scalar_impl::mul_pointwise,
    add_mul: scalar_impl::add_mul,
    scalar_mul_assign: scalar_impl::scalar_mul_assign,
    sub_mul_assign: scalar_impl::sub_mul_assign,
    mod_reduce: scalar_impl::mod_reduce,
    centered_reduce: scalar_impl::centered_reduce,
    ks_accum: scalar_impl::ks_accum,
};

/// Reduces a lazy value in `[0, 4q)` to `[0, q)`.
#[inline(always)]
fn reduce4(mut x: u64, q: u64, two_q: u64) -> u64 {
    if x >= two_q {
        x -= two_q;
    }
    if x >= q {
        x -= q;
    }
    x
}

mod scalar_impl {
    use super::*;

    /// Runs `f` over both slices in lockstep, 4 elements at a time with a
    /// scalar tail — the unroll shape NEON/auto-vectorizers like.
    #[inline(always)]
    fn zip4(a: &mut [u64], b: &[u64], mut f: impl FnMut(&mut u64, u64)) {
        debug_assert_eq!(a.len(), b.len());
        let mut ac = a.chunks_exact_mut(4);
        let mut bc = b.chunks_exact(4);
        for (a4, b4) in (&mut ac).zip(&mut bc) {
            for k in 0..4 {
                f(&mut a4[k], b4[k]);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            f(x, y);
        }
    }

    pub(super) fn add_assign(a: &mut [u64], b: &[u64], q: u64) {
        zip4(a, b, |x, y| {
            let s = *x + y;
            *x = if s >= q { s - q } else { s };
        });
    }

    pub(super) fn sub_assign(a: &mut [u64], b: &[u64], q: u64) {
        zip4(a, b, |x, y| {
            *x = if *x >= y { *x - y } else { *x + q - y };
        });
    }

    pub(super) fn neg_assign(a: &mut [u64], q: u64) {
        for x in a.iter_mut() {
            *x = if *x == 0 { 0 } else { q - *x };
        }
    }

    pub(super) fn mul_pointwise(dst: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        debug_assert!(dst.len() == a.len() && a.len() == b.len());
        let br = Barrett::new(q);
        let mut dc = dst.chunks_exact_mut(4);
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        for ((d4, a4), b4) in (&mut dc).zip(&mut ac).zip(&mut bc) {
            for k in 0..4 {
                d4[k] = br.mul_mod(a4[k], b4[k]);
            }
        }
        for ((d, &x), &y) in dc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *d = br.mul_mod(x, y);
        }
    }

    pub(super) fn add_mul(dst: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        debug_assert!(dst.len() == a.len() && a.len() == b.len());
        let br = Barrett::new(q);
        let mut dc = dst.chunks_exact_mut(4);
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        for ((d4, a4), b4) in (&mut dc).zip(&mut ac).zip(&mut bc) {
            for k in 0..4 {
                let s = d4[k] + br.mul_mod(a4[k], b4[k]);
                d4[k] = if s >= q { s - q } else { s };
            }
        }
        for ((d, &x), &y) in dc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            let s = *d + br.mul_mod(x, y);
            *d = if s >= q { s - q } else { s };
        }
    }

    pub(super) fn scalar_mul_assign(a: &mut [u64], s: u64, s_sh: u64, q: u64) {
        for x in a.iter_mut() {
            *x = mul_mod_shoup(*x, s, s_sh, q);
        }
    }

    pub(super) fn sub_mul_assign(a: &mut [u64], b: &[u64], s: u64, s_sh: u64, q: u64) {
        zip4(a, b, |x, y| {
            let d = if *x >= y { *x - y } else { *x + q - y };
            *x = mul_mod_shoup(d, s, s_sh, q);
        });
    }

    pub(super) fn mod_reduce(dst: &mut [u64], src: &[u64], q: u64) {
        debug_assert_eq!(dst.len(), src.len());
        let br = Barrett::new(q);
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = br.reduce_u64(x);
        }
    }

    pub(super) fn centered_reduce(dst: &mut [u64], src: &[u64], src_q: u64, dst_q: u64) {
        debug_assert_eq!(dst.len(), src.len());
        let br = Barrett::new(dst_q);
        let half = src_q >> 1;
        // center(x, src_q) ≡ x − src_q·[x > src_q/2] (mod dst_q)
        let delta = br.reduce_u64(src_q % dst_q);
        for (d, &x) in dst.iter_mut().zip(src) {
            let mut r = br.reduce_u64(x);
            if x > half {
                r = if r >= delta {
                    r - delta
                } else {
                    r + dst_q - delta
                };
            }
            *d = r;
        }
    }

    pub(super) fn ks_accum(
        dst: &mut [u64],
        digits: &[&[u64]],
        keys: &[&[u64]],
        key_shoups: &[&[u64]],
        q: u64,
    ) {
        debug_assert_eq!(digits.len(), keys.len());
        debug_assert_eq!(digits.len(), key_shoups.len());
        let two_q = 2 * q;
        // Accumulator invariant: acc < 2q on digit entry; each lazy product
        // adds < 2q (transient < 4q < 2⁶⁴), one conditional subtract
        // restores the invariant. Walking digit-by-digit (instead of
        // element-by-element) performs the identical per-element operation
        // sequence — same adds, same conditional subtracts — through clean
        // iterator zips instead of bounds-checked indexing.
        for i in 0..digits.len() {
            let (d, k, ks) = (digits[i], keys[i], key_shoups[i]);
            debug_assert!(d.len() == dst.len() && k.len() == dst.len() && ks.len() == dst.len());
            let mut accs = dst.chunks_exact_mut(4);
            let mut dc = d.chunks_exact(4);
            let mut kc = k.chunks_exact(4);
            let mut ksc = ks.chunks_exact(4);
            for (((a4, d4), k4), ks4) in (&mut accs).zip(&mut dc).zip(&mut kc).zip(&mut ksc) {
                for t in 0..4 {
                    let acc = a4[t] + mul_mod_shoup_lazy(d4[t], k4[t], ks4[t], q);
                    a4[t] = if acc >= two_q { acc - two_q } else { acc };
                }
            }
            for (((a, &dv), &kv), &ksv) in accs
                .into_remainder()
                .iter_mut()
                .zip(dc.remainder())
                .zip(kc.remainder())
                .zip(ksc.remainder())
            {
                let acc = *a + mul_mod_shoup_lazy(dv, kv, ksv, q);
                *a = if acc >= two_q { acc - two_q } else { acc };
            }
        }
        for acc in dst.iter_mut() {
            if *acc >= q {
                *acc -= q;
            }
        }
    }

    /// Lazy forward butterfly over a split block: `u ∈ [0,4q) → [0,2q)`,
    /// lazy product of `v`, outputs `< 4q`.
    #[inline(always)]
    fn fwd_span(us: &mut [u64], vs: &mut [u64], s: u64, s_sh: u64, q: u64, two_q: u64) {
        let mut uc = us.chunks_exact_mut(4);
        let mut vc = vs.chunks_exact_mut(4);
        for (u4, v4) in (&mut uc).zip(&mut vc) {
            for k in 0..4 {
                let mut u = u4[k];
                if u >= two_q {
                    u -= two_q;
                }
                let v = mul_mod_shoup_lazy(v4[k], s, s_sh, q);
                u4[k] = u + v;
                v4[k] = u + two_q - v;
            }
        }
        for (up, vp) in uc.into_remainder().iter_mut().zip(vc.into_remainder()) {
            let mut u = *up;
            if u >= two_q {
                u -= two_q;
            }
            let v = mul_mod_shoup_lazy(*vp, s, s_sh, q);
            *up = u + v;
            *vp = u + two_q - v;
        }
    }

    pub(super) fn ntt_fwd_lazy(a: &mut [u64], psi: &[u64], psi_sh: &[u64], q: u64) {
        let n = a.len();
        debug_assert!(n.is_power_of_two() && n >= 2);
        debug_assert_eq!(psi.len(), n);
        let two_q = 2 * q;
        let mut t = n;
        let mut m = 1;
        // All stages except the last keep outputs lazy in [0, 4q). The
        // per-stage twiddle/shoup pairs are hoisted into subslices so the
        // inner loop carries no table indexing.
        while m < n / 2 {
            t >>= 1;
            let tw = &psi[m..2 * m];
            let tw_sh = &psi_sh[m..2 * m];
            for i in 0..m {
                let j1 = 2 * i * t;
                let (us, vs) = a[j1..j1 + 2 * t].split_at_mut(t);
                fwd_span(us, vs, tw[i], tw_sh[i], q, two_q);
            }
            m <<= 1;
        }
        // Last stage (t == 1): fold the full-reduction sweep into the
        // butterfly instead of a separate pass over the limb.
        let m = n / 2;
        let tw = &psi[m..2 * m];
        let tw_sh = &psi_sh[m..2 * m];
        for (i, pair) in a.chunks_exact_mut(2).enumerate() {
            let mut u = pair[0];
            if u >= two_q {
                u -= two_q;
            }
            let v = mul_mod_shoup_lazy(pair[1], tw[i], tw_sh[i], q);
            pair[0] = reduce4(u + v, q, two_q);
            pair[1] = reduce4(u + two_q - v, q, two_q);
        }
    }

    /// Lazy inverse butterfly over a split block: `u, v ∈ [0,2q)`, outputs
    /// stay in `[0,2q)`.
    #[inline(always)]
    fn inv_span(us: &mut [u64], vs: &mut [u64], s: u64, s_sh: u64, q: u64, two_q: u64) {
        let mut uc = us.chunks_exact_mut(4);
        let mut vc = vs.chunks_exact_mut(4);
        for (u4, v4) in (&mut uc).zip(&mut vc) {
            for k in 0..4 {
                let (u, v) = (u4[k], v4[k]);
                let mut s0 = u + v;
                if s0 >= two_q {
                    s0 -= two_q;
                }
                u4[k] = s0;
                v4[k] = mul_mod_shoup_lazy(u + two_q - v, s, s_sh, q);
            }
        }
        for (up, vp) in uc.into_remainder().iter_mut().zip(vc.into_remainder()) {
            let (u, v) = (*up, *vp);
            let mut s0 = u + v;
            if s0 >= two_q {
                s0 -= two_q;
            }
            *up = s0;
            *vp = mul_mod_shoup_lazy(u + two_q - v, s, s_sh, q);
        }
    }

    pub(super) fn ntt_inv_lazy(a: &mut [u64], ipsi: &[u64], ipsi_sh: &[u64], sc: InvScale, q: u64) {
        let n = a.len();
        debug_assert!(n.is_power_of_two() && n >= 2);
        debug_assert_eq!(ipsi.len(), n);
        let two_q = 2 * q;
        let mut t = 1;
        let mut m = n;
        while m > 2 {
            let h = m >> 1;
            let tw = &ipsi[h..2 * h];
            let tw_sh = &ipsi_sh[h..2 * h];
            let mut j1 = 0;
            for i in 0..h {
                let (us, vs) = a[j1..j1 + 2 * t].split_at_mut(t);
                inv_span(us, vs, tw[i], tw_sh[i], q, two_q);
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        // Last stage (m == 2, single twiddle ψ⁻¹_brv[1]): fold the N⁻¹
        // scaling in. The strict Shoup product accepts any u64 input (the
        // lazy sums here are < 4q) and fully reduces, so this is
        // bit-identical to butterfly-then-scale.
        let t = n / 2;
        let (us, vs) = a.split_at_mut(t);
        for (up, vp) in us.iter_mut().zip(vs.iter_mut()) {
            let (u, v) = (*up, *vp);
            *up = mul_mod_shoup(u + v, sc.n_inv, sc.n_inv_shoup, q);
            *vp = mul_mod_shoup(u + two_q - v, sc.s_n_inv, sc.s_n_inv_shoup, q);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2_impl {
    use super::*;
    use core::arch::x86_64::*;

    pub(super) static AVX2: Kernels = Kernels {
        name: "avx2",
        ntt_fwd_lazy,
        ntt_inv_lazy,
        add_assign,
        sub_assign,
        neg_assign,
        // The pure-Barrett elementwise kernels deliberately reuse the
        // scalar bodies: their 4-wide chunked loops auto-vectorize, and a
        // hand-written schoolbook 64×64 emulation (7 32-bit multiplies per
        // lane) measures slower than what LLVM emits for them. Handwritten
        // AVX2 stays where the compiler cannot vectorize — the butterfly
        // shuffle structure, the read-modify-write MAC, and the lazy
        // key-switch accumulation.
        mul_pointwise: super::scalar_impl::mul_pointwise,
        add_mul,
        scalar_mul_assign,
        sub_mul_assign,
        mod_reduce: super::scalar_impl::mod_reduce,
        centered_reduce: super::scalar_impl::centered_reduce,
        ks_accum,
    };

    /// Sign-bit constant for unsigned 64-bit comparison via signed compare.
    #[inline(always)]
    unsafe fn sign_bit() -> __m256i {
        // SAFETY: register-only broadcast, no memory access; the caller
        // guarantees AVX2 (all helpers in this module are reached only
        // through kernels gated on `is_x86_feature_detected!("avx2")`).
        unsafe { _mm256_set1_epi64x(i64::MIN) }
    }

    /// Lane-wise `a - m` where `a >= m`, else `a` (unsigned conditional
    /// subtract; compare is signed-with-bias).
    #[inline(always)]
    unsafe fn csub(a: __m256i, m: __m256i, sign: __m256i) -> __m256i {
        // SAFETY: pure lane arithmetic on register values (no memory
        // access); caller guarantees AVX2. The signed-with-bias compare is
        // exact for any u64 lanes, so the conditional subtract keeps the
        // advertised `[0, m)` range whenever `a < 2m`.
        unsafe {
            let lt = _mm256_cmpgt_epi64(_mm256_xor_si256(m, sign), _mm256_xor_si256(a, sign));
            _mm256_sub_epi64(a, _mm256_andnot_si256(lt, m))
        }
    }

    /// Low 64 bits of the lane-wise 64×64 product (AVX2 has no native
    /// 64-bit multiply; three 32×32 products assemble it).
    #[inline(always)]
    unsafe fn mullo64(a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: pure lane arithmetic on register values; caller
        // guarantees AVX2. Wrapping adds are the intended semantics — only
        // the low 64 bits of the product are kept.
        unsafe {
            let a_hi = _mm256_srli_epi64(a, 32);
            let b_hi = _mm256_srli_epi64(b, 32);
            let lo = _mm256_mul_epu32(a, b);
            let mid = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
            _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32))
        }
    }

    /// High 64 bits of the lane-wise 64×64 product (four 32×32 schoolbook
    /// partials with exact carry assembly; no partial sum overflows u64).
    #[inline(always)]
    unsafe fn mulhi64(a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: pure lane arithmetic on register values; caller
        // guarantees AVX2. Each 32×32 partial is ≤ (2³²−1)², so none of
        // the carry-assembly sums can overflow a u64 lane.
        unsafe {
            let a_hi = _mm256_srli_epi64(a, 32);
            let b_hi = _mm256_srli_epi64(b, 32);
            let mask = _mm256_set1_epi64x(0xffff_ffff);
            let ll = _mm256_mul_epu32(a, b);
            let lh = _mm256_mul_epu32(a, b_hi);
            let hl = _mm256_mul_epu32(a_hi, b);
            let hh = _mm256_mul_epu32(a_hi, b_hi);
            let t = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
            let u = _mm256_add_epi64(hl, _mm256_and_si256(t, mask));
            _mm256_add_epi64(
                hh,
                _mm256_add_epi64(_mm256_srli_epi64(t, 32), _mm256_srli_epi64(u, 32)),
            )
        }
    }

    /// Lazy Shoup product: congruent to `a·b mod q`, in `[0, 2q)`; `a` may
    /// be any u64, `(b, b_sh)` are the fixed operand and its Shoup pair.
    #[inline(always)]
    unsafe fn mul_shoup_lazy(a: __m256i, b: __m256i, b_sh: __m256i, qv: __m256i) -> __m256i {
        // SAFETY: register-only arithmetic; caller guarantees AVX2 and
        // that `b_sh = ⌊b·2⁶⁴/q⌋` (the Shoup pair), which bounds the lazy
        // result to `[0, 2q)` — the documented output range.
        unsafe {
            let hi = mulhi64(a, b_sh);
            _mm256_sub_epi64(mullo64(a, b), mullo64(hi, qv))
        }
    }

    /// Strict Shoup product: `a·b mod q` in `[0, q)` for any u64 `a`.
    #[inline(always)]
    unsafe fn mul_shoup(
        a: __m256i,
        b: __m256i,
        b_sh: __m256i,
        qv: __m256i,
        sign: __m256i,
    ) -> __m256i {
        // SAFETY: register-only arithmetic; caller guarantees AVX2. The
        // lazy product is `< 2q`, so one conditional subtract lands in
        // `[0, q)`.
        unsafe { csub(mul_shoup_lazy(a, b, b_sh, qv), qv, sign) }
    }

    /// Lane-wise add with carry-out (0/1 per lane, detected by unsigned
    /// `sum < a`).
    #[inline(always)]
    unsafe fn addcarry(a: __m256i, b: __m256i, sign: __m256i) -> (__m256i, __m256i) {
        // SAFETY: register-only arithmetic; caller guarantees AVX2. The
        // wrapping add plus biased compare implements the unsigned
        // `sum < a` carry-out test exactly.
        unsafe {
            let s = _mm256_add_epi64(a, b);
            let c = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign), _mm256_xor_si256(s, sign));
            (s, _mm256_srli_epi64(c, 63))
        }
    }

    /// Vector Barrett constants for one modulus.
    struct BarrettVec {
        qv: __m256i,
        r_lo: __m256i,
        r_hi: __m256i,
        sign: __m256i,
    }

    impl BarrettVec {
        #[inline(always)]
        unsafe fn new(q: u64) -> (Barrett, Self) {
            let br = Barrett::new(q);
            let r = u128::MAX / q as u128;
            // SAFETY: register-only broadcasts of the Barrett constants;
            // caller guarantees AVX2.
            unsafe {
                (
                    br,
                    Self {
                        qv: _mm256_set1_epi64x(q as i64),
                        r_lo: _mm256_set1_epi64x(r as u64 as i64),
                        r_hi: _mm256_set1_epi64x((r >> 64) as u64 as i64),
                        sign: sign_bit(),
                    },
                )
            }
        }

        /// Reduces the 128-bit lane values `(x_hi, x_lo)` into `[0, q)`;
        /// mirrors `Barrett::reduce_u128` word for word (same quotient
        /// estimate, same single conditional subtract → bit-identical).
        #[inline(always)]
        unsafe fn reduce(&self, x_lo: __m256i, x_hi: __m256i) -> __m256i {
            // SAFETY: register-only arithmetic; caller guarantees AVX2 and
            // lane values `x < q·2⁶⁴` (any product of `< q` operands), so
            // the scalar proof of `Barrett::reduce_u128` — quotient
            // estimate off by at most one — carries over lane for lane.
            unsafe {
                let carry = mulhi64(x_lo, self.r_lo);
                let b_lo = mullo64(x_lo, self.r_hi);
                let b_hi = mulhi64(x_lo, self.r_hi);
                let (mid, c1) = addcarry(b_lo, carry, self.sign);
                let b_hi = _mm256_add_epi64(b_hi, c1);
                let c_lo = mullo64(x_hi, self.r_lo);
                let c_hi = mulhi64(x_hi, self.r_lo);
                let (_, c2) = addcarry(mid, c_lo, self.sign);
                let carry2 = _mm256_add_epi64(c_hi, c2);
                let est =
                    _mm256_add_epi64(_mm256_add_epi64(mullo64(x_hi, self.r_hi), b_hi), carry2);
                let r = _mm256_sub_epi64(x_lo, mullo64(est, self.qv));
                csub(r, self.qv, self.sign)
            }
        }

        /// `a·b mod q` per lane, both operands variable and `< q`.
        #[inline(always)]
        unsafe fn mul_mod(&self, a: __m256i, b: __m256i) -> __m256i {
            // SAFETY: register-only arithmetic; caller guarantees AVX2 and
            // operands `< q`, meeting `reduce`'s input bound.
            unsafe { self.reduce(mullo64(a, b), mulhi64(a, b)) }
        }
    }

    // SAFETY note shared by every `*_avx2` target-feature function below:
    // they are reachable only through the `AVX2` kernel table, which
    // `super::avx2()` hands out after `is_x86_feature_detected!("avx2")`
    // has confirmed support, so the intrinsics are always executed on a
    // CPU that has them. Loads and stores use the unaligned variants on
    // in-bounds chunk pointers produced by safe slice iteration. The thin
    // safe wrappers exist because the dispatch table stores plain `fn`
    // pointers, which a `#[target_feature]` function cannot coerce to.

    /// Declares the safe `fn`-pointer-compatible wrapper for one
    /// target-feature kernel body.
    macro_rules! wrap_avx2 {
        ($(#[$doc:meta])* $name:ident => $body:ident ( $($arg:ident : $ty:ty),* )) => {
            $(#[$doc])*
            fn $name($($arg: $ty),*) {
                // SAFETY: see the module safety note — this table is only
                // handed out after AVX2 detection.
                unsafe { $body($($arg),*) }
            }
        };
    }

    wrap_avx2!(add_assign => add_assign_avx2(a: &mut [u64], b: &[u64], q: u64));
    wrap_avx2!(sub_assign => sub_assign_avx2(a: &mut [u64], b: &[u64], q: u64));
    wrap_avx2!(neg_assign => neg_assign_avx2(a: &mut [u64], q: u64));
    wrap_avx2!(add_mul => add_mul_avx2(dst: &mut [u64], a: &[u64], b: &[u64], q: u64));
    wrap_avx2!(scalar_mul_assign => scalar_mul_assign_avx2(a: &mut [u64], s: u64, s_sh: u64, q: u64));
    wrap_avx2!(sub_mul_assign => sub_mul_assign_avx2(a: &mut [u64], b: &[u64], s: u64, s_sh: u64, q: u64));
    wrap_avx2!(ks_accum => ks_accum_avx2(dst: &mut [u64], digits: &[&[u64]], keys: &[&[u64]], key_shoups: &[&[u64]], q: u64));
    wrap_avx2!(ntt_fwd_lazy => ntt_fwd_lazy_avx2(a: &mut [u64], psi: &[u64], psi_sh: &[u64], q: u64));
    wrap_avx2!(ntt_inv_lazy => ntt_inv_lazy_avx2(a: &mut [u64], ipsi: &[u64], ipsi_sh: &[u64], sc: InvScale, q: u64));

    #[target_feature(enable = "avx2")]
    unsafe fn add_assign_avx2(a: &mut [u64], b: &[u64], q: u64) {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: AVX2 verified by dispatch (see module note); pointers
        // come from exact 4-element chunks of the slices.
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let sign = sign_bit();
            let mut ac = a.chunks_exact_mut(4);
            let mut bc = b.chunks_exact(4);
            for (a4, b4) in (&mut ac).zip(&mut bc) {
                let av = _mm256_loadu_si256(a4.as_ptr() as *const __m256i);
                let bv = _mm256_loadu_si256(b4.as_ptr() as *const __m256i);
                let s = csub(_mm256_add_epi64(av, bv), qv, sign);
                _mm256_storeu_si256(a4.as_mut_ptr() as *mut __m256i, s);
            }
            for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
                let s = *x + y;
                *x = if s >= q { s - q } else { s };
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sub_assign_avx2(a: &mut [u64], b: &[u64], q: u64) {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: AVX2 verified by dispatch; in-bounds chunk pointers.
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let sign = sign_bit();
            let mut ac = a.chunks_exact_mut(4);
            let mut bc = b.chunks_exact(4);
            for (a4, b4) in (&mut ac).zip(&mut bc) {
                let av = _mm256_loadu_si256(a4.as_ptr() as *const __m256i);
                let bv = _mm256_loadu_si256(b4.as_ptr() as *const __m256i);
                // a - b + q, then subtract q back where the sum is >= q.
                let s = csub(_mm256_sub_epi64(_mm256_add_epi64(av, qv), bv), qv, sign);
                _mm256_storeu_si256(a4.as_mut_ptr() as *mut __m256i, s);
            }
            for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
                *x = if *x >= y { *x - y } else { *x + q - y };
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn neg_assign_avx2(a: &mut [u64], q: u64) {
        // SAFETY: AVX2 verified by dispatch; in-bounds chunk pointers.
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let zero = _mm256_setzero_si256();
            let mut ac = a.chunks_exact_mut(4);
            for a4 in &mut ac {
                let av = _mm256_loadu_si256(a4.as_ptr() as *const __m256i);
                // q - a, masked to 0 where a == 0.
                let nz = _mm256_cmpeq_epi64(av, zero);
                let r = _mm256_andnot_si256(nz, _mm256_sub_epi64(qv, av));
                _mm256_storeu_si256(a4.as_mut_ptr() as *mut __m256i, r);
            }
            for x in ac.into_remainder() {
                *x = if *x == 0 { 0 } else { q - *x };
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_mul_avx2(dst: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        debug_assert!(dst.len() == a.len() && a.len() == b.len());
        // SAFETY: AVX2 verified by dispatch; in-bounds chunk pointers.
        unsafe {
            let (br, bv) = BarrettVec::new(q);
            let mut dc = dst.chunks_exact_mut(4);
            let mut ac = a.chunks_exact(4);
            let mut bc = b.chunks_exact(4);
            for ((d4, a4), b4) in (&mut dc).zip(&mut ac).zip(&mut bc) {
                let av = _mm256_loadu_si256(a4.as_ptr() as *const __m256i);
                let xv = _mm256_loadu_si256(b4.as_ptr() as *const __m256i);
                let dv = _mm256_loadu_si256(d4.as_ptr() as *const __m256i);
                let s = csub(_mm256_add_epi64(dv, bv.mul_mod(av, xv)), bv.qv, bv.sign);
                _mm256_storeu_si256(d4.as_mut_ptr() as *mut __m256i, s);
            }
            for ((d, &x), &y) in dc
                .into_remainder()
                .iter_mut()
                .zip(ac.remainder())
                .zip(bc.remainder())
            {
                let s = *d + br.mul_mod(x, y);
                *d = if s >= q { s - q } else { s };
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scalar_mul_assign_avx2(a: &mut [u64], s: u64, s_sh: u64, q: u64) {
        // SAFETY: AVX2 verified by dispatch; in-bounds chunk pointers.
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let sv = _mm256_set1_epi64x(s as i64);
            let sshv = _mm256_set1_epi64x(s_sh as i64);
            let sign = sign_bit();
            let mut ac = a.chunks_exact_mut(4);
            for a4 in &mut ac {
                let av = _mm256_loadu_si256(a4.as_ptr() as *const __m256i);
                let r = mul_shoup(av, sv, sshv, qv, sign);
                _mm256_storeu_si256(a4.as_mut_ptr() as *mut __m256i, r);
            }
            for x in ac.into_remainder() {
                *x = mul_mod_shoup(*x, s, s_sh, q);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sub_mul_assign_avx2(a: &mut [u64], b: &[u64], s: u64, s_sh: u64, q: u64) {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: AVX2 verified by dispatch; in-bounds chunk pointers.
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let sv = _mm256_set1_epi64x(s as i64);
            let sshv = _mm256_set1_epi64x(s_sh as i64);
            let sign = sign_bit();
            let mut ac = a.chunks_exact_mut(4);
            let mut bc = b.chunks_exact(4);
            for (a4, b4) in (&mut ac).zip(&mut bc) {
                let av = _mm256_loadu_si256(a4.as_ptr() as *const __m256i);
                let bvv = _mm256_loadu_si256(b4.as_ptr() as *const __m256i);
                let d = csub(_mm256_sub_epi64(_mm256_add_epi64(av, qv), bvv), qv, sign);
                let r = mul_shoup(d, sv, sshv, qv, sign);
                _mm256_storeu_si256(a4.as_mut_ptr() as *mut __m256i, r);
            }
            for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
                let d = if *x >= y { *x - y } else { *x + q - y };
                *x = mul_mod_shoup(d, s, s_sh, q);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ks_accum_avx2(
        dst: &mut [u64],
        digits: &[&[u64]],
        keys: &[&[u64]],
        key_shoups: &[&[u64]],
        q: u64,
    ) {
        debug_assert_eq!(digits.len(), keys.len());
        debug_assert_eq!(digits.len(), key_shoups.len());
        let n = dst.len();
        let two_q = 2 * q;
        // SAFETY: AVX2 verified by dispatch; all slice accesses below are
        // bounds-checked at the block level (`j + 4 <= n` in the vector
        // loop; per-digit slices are asserted to the same length).
        unsafe {
            for d in digits {
                assert_eq!(d.len(), n);
            }
            for k in keys {
                assert_eq!(k.len(), n);
            }
            for s in key_shoups {
                assert_eq!(s.len(), n);
            }
            let qv = _mm256_set1_epi64x(q as i64);
            let two_qv = _mm256_set1_epi64x(two_q as i64);
            let sign = sign_bit();
            let mut j = 0;
            while j + 4 <= n {
                let mut acc = _mm256_loadu_si256(dst.as_ptr().add(j) as *const __m256i);
                // Accumulator stays < 2q: each lazy product adds < 2q
                // (transient < 4q < 2⁶⁴), one csub(2q) per digit.
                for i in 0..digits.len() {
                    let dv = _mm256_loadu_si256(digits[i].as_ptr().add(j) as *const __m256i);
                    let kv = _mm256_loadu_si256(keys[i].as_ptr().add(j) as *const __m256i);
                    let ksv = _mm256_loadu_si256(key_shoups[i].as_ptr().add(j) as *const __m256i);
                    let p = mul_shoup_lazy(dv, kv, ksv, qv);
                    acc = csub(_mm256_add_epi64(acc, p), two_qv, sign);
                }
                acc = csub(acc, qv, sign);
                _mm256_storeu_si256(dst.as_mut_ptr().add(j) as *mut __m256i, acc);
                j += 4;
            }
            while j < n {
                let mut acc = dst[j];
                for i in 0..digits.len() {
                    let p = mul_mod_shoup_lazy(digits[i][j], keys[i][j], key_shoups[i][j], q);
                    acc += p;
                    if acc >= two_q {
                        acc -= two_q;
                    }
                }
                dst[j] = if acc >= q { acc - q } else { acc };
                j += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ntt_fwd_lazy_avx2(a: &mut [u64], psi: &[u64], psi_sh: &[u64], q: u64) {
        let n = a.len();
        debug_assert!(n.is_power_of_two() && n >= 2);
        debug_assert_eq!(psi.len(), n);
        if n < 8 {
            return super::scalar_impl::ntt_fwd_lazy(a, psi, psi_sh, q);
        }
        let two_q = 2 * q;
        // SAFETY: AVX2 verified by dispatch. Pointer arithmetic stays in
        // bounds: every stage partitions the length-n slice into disjoint
        // blocks whose u/v halves are multiples of 4 lanes (t >= 4), pairs
        // of 2-element blocks (t == 2, m = n/4 >= 2 even), or 4
        // interleaved pairs (t == 1, m = n/2 >= 4 a multiple of 4).
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let two_qv = _mm256_set1_epi64x(two_q as i64);
            let sign = sign_bit();
            let ap = a.as_mut_ptr();
            let mut t = n;
            let mut m = 1;
            // Stages with t >= 4: contiguous u/v spans, one broadcast
            // twiddle per block.
            while m < n / 2 && t > 8 {
                t >>= 1;
                let tw = &psi[m..2 * m];
                let tw_sh = &psi_sh[m..2 * m];
                for i in 0..m {
                    let j1 = 2 * i * t;
                    let sv = _mm256_set1_epi64x(tw[i] as i64);
                    let sshv = _mm256_set1_epi64x(tw_sh[i] as i64);
                    let mut j = 0;
                    while j < t {
                        let up = ap.add(j1 + j) as *mut __m256i;
                        let vp = ap.add(j1 + j + t) as *mut __m256i;
                        let u = csub(_mm256_loadu_si256(up as *const _), two_qv, sign);
                        let v = mul_shoup_lazy(_mm256_loadu_si256(vp as *const _), sv, sshv, qv);
                        _mm256_storeu_si256(up, _mm256_add_epi64(u, v));
                        _mm256_storeu_si256(vp, _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v));
                        j += 4;
                    }
                }
                m <<= 1;
            }
            // t == 4 stage (if not the last): same span code, exactly one
            // vector per block half.
            if m < n / 2 {
                t >>= 1;
                debug_assert_eq!(t, 4);
                let tw = &psi[m..2 * m];
                let tw_sh = &psi_sh[m..2 * m];
                for i in 0..m {
                    let j1 = 8 * i;
                    let sv = _mm256_set1_epi64x(tw[i] as i64);
                    let sshv = _mm256_set1_epi64x(tw_sh[i] as i64);
                    let up = ap.add(j1) as *mut __m256i;
                    let vp = ap.add(j1 + 4) as *mut __m256i;
                    let u = csub(_mm256_loadu_si256(up as *const _), two_qv, sign);
                    let v = mul_shoup_lazy(_mm256_loadu_si256(vp as *const _), sv, sshv, qv);
                    _mm256_storeu_si256(up, _mm256_add_epi64(u, v));
                    _mm256_storeu_si256(vp, _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v));
                }
                m <<= 1;
            }
            // t == 2 stage (if not the last): two blocks per vector pair,
            // twiddles duplicated into [s0 s0 s1 s1].
            if m < n / 2 {
                t >>= 1;
                debug_assert_eq!(t, 2);
                let tw = &psi[m..2 * m];
                let tw_sh = &psi_sh[m..2 * m];
                let mut i = 0;
                while i < m {
                    let j1 = 4 * i;
                    let r0 = _mm256_loadu_si256(ap.add(j1) as *const __m256i);
                    let r1 = _mm256_loadu_si256(ap.add(j1 + 4) as *const __m256i);
                    let u = csub(_mm256_permute2x128_si256(r0, r1, 0x20), two_qv, sign);
                    let vraw = _mm256_permute2x128_si256(r0, r1, 0x31);
                    // only two twiddles are needed: a 128-bit load keeps
                    // the read inside the slice, the permute duplicates
                    // each into its block's lane pair [s0 s0 s1 s1]
                    let tp = _mm256_castsi128_si256(_mm_loadu_si128(
                        tw.as_ptr().add(i) as *const __m128i
                    ));
                    let tsp = _mm256_castsi128_si256(_mm_loadu_si128(
                        tw_sh.as_ptr().add(i) as *const __m128i
                    ));
                    let sv = _mm256_permute4x64_epi64(tp, 0x50);
                    let sshv = _mm256_permute4x64_epi64(tsp, 0x50);
                    let v = mul_shoup_lazy(vraw, sv, sshv, qv);
                    let uo = _mm256_add_epi64(u, v);
                    let vo = _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v);
                    _mm256_storeu_si256(
                        ap.add(j1) as *mut __m256i,
                        _mm256_permute2x128_si256(uo, vo, 0x20),
                    );
                    _mm256_storeu_si256(
                        ap.add(j1 + 4) as *mut __m256i,
                        _mm256_permute2x128_si256(uo, vo, 0x31),
                    );
                    i += 2;
                }
                m <<= 1;
            }
            // Last stage (t == 1): interleaved pairs, folded full
            // reduction — outputs land in [0, q) with no extra sweep.
            debug_assert_eq!(m, n / 2);
            let tw = &psi[m..2 * m];
            let tw_sh = &psi_sh[m..2 * m];
            let mut i = 0;
            while i < m {
                let j1 = 2 * i;
                let r0 = _mm256_loadu_si256(ap.add(j1) as *const __m256i);
                let r1 = _mm256_loadu_si256(ap.add(j1 + 4) as *const __m256i);
                // deinterleave: u = [u0 u2 u1 u3], v = [v0 v2 v1 v3]
                let u = csub(_mm256_unpacklo_epi64(r0, r1), two_qv, sign);
                let vraw = _mm256_unpackhi_epi64(r0, r1);
                let tp = _mm256_loadu_si256(tw.as_ptr().add(i) as *const __m256i);
                let tsp = _mm256_loadu_si256(tw_sh.as_ptr().add(i) as *const __m256i);
                // match the [s0 s2 s1 s3] lane order of the unpack
                let sv = _mm256_permute4x64_epi64(tp, 0xD8);
                let sshv = _mm256_permute4x64_epi64(tsp, 0xD8);
                let v = mul_shoup_lazy(vraw, sv, sshv, qv);
                let uo = csub(csub(_mm256_add_epi64(u, v), two_qv, sign), qv, sign);
                let vo = csub(
                    csub(
                        _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v),
                        two_qv,
                        sign,
                    ),
                    qv,
                    sign,
                );
                _mm256_storeu_si256(ap.add(j1) as *mut __m256i, _mm256_unpacklo_epi64(uo, vo));
                _mm256_storeu_si256(
                    ap.add(j1 + 4) as *mut __m256i,
                    _mm256_unpackhi_epi64(uo, vo),
                );
                i += 4;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ntt_inv_lazy_avx2(
        a: &mut [u64],
        ipsi: &[u64],
        ipsi_sh: &[u64],
        sc: InvScale,
        q: u64,
    ) {
        let n = a.len();
        debug_assert!(n.is_power_of_two() && n >= 2);
        debug_assert_eq!(ipsi.len(), n);
        if n < 8 {
            return super::scalar_impl::ntt_inv_lazy(a, ipsi, ipsi_sh, sc, q);
        }
        let two_q = 2 * q;
        // SAFETY: AVX2 verified by dispatch; same block-partition bounds
        // argument as the forward transform, traversed in reverse order.
        unsafe {
            let qv = _mm256_set1_epi64x(q as i64);
            let two_qv = _mm256_set1_epi64x(two_q as i64);
            let sign = sign_bit();
            let ap = a.as_mut_ptr();
            let mut t = 1;
            let mut m = n;
            // First stage (t == 1): interleaved pairs.
            {
                let h = m >> 1;
                let tw = &ipsi[h..2 * h];
                let tw_sh = &ipsi_sh[h..2 * h];
                let mut i = 0;
                while i < h {
                    let j1 = 2 * i;
                    let r0 = _mm256_loadu_si256(ap.add(j1) as *const __m256i);
                    let r1 = _mm256_loadu_si256(ap.add(j1 + 4) as *const __m256i);
                    let u = _mm256_unpacklo_epi64(r0, r1);
                    let v = _mm256_unpackhi_epi64(r0, r1);
                    let tp = _mm256_loadu_si256(tw.as_ptr().add(i) as *const __m256i);
                    let tsp = _mm256_loadu_si256(tw_sh.as_ptr().add(i) as *const __m256i);
                    let sv = _mm256_permute4x64_epi64(tp, 0xD8);
                    let sshv = _mm256_permute4x64_epi64(tsp, 0xD8);
                    let s0 = csub(_mm256_add_epi64(u, v), two_qv, sign);
                    let d = _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v);
                    let vo = mul_shoup_lazy(d, sv, sshv, qv);
                    _mm256_storeu_si256(ap.add(j1) as *mut __m256i, _mm256_unpacklo_epi64(s0, vo));
                    _mm256_storeu_si256(
                        ap.add(j1 + 4) as *mut __m256i,
                        _mm256_unpackhi_epi64(s0, vo),
                    );
                    i += 4;
                }
                t <<= 1;
                m = h;
            }
            // t == 2 stage: paired blocks via 128-bit lane permutes.
            if m > 2 {
                let h = m >> 1;
                let tw = &ipsi[h..2 * h];
                let tw_sh = &ipsi_sh[h..2 * h];
                let mut i = 0;
                while i < h {
                    let j1 = 4 * i;
                    let r0 = _mm256_loadu_si256(ap.add(j1) as *const __m256i);
                    let r1 = _mm256_loadu_si256(ap.add(j1 + 4) as *const __m256i);
                    let u = _mm256_permute2x128_si256(r0, r1, 0x20);
                    let v = _mm256_permute2x128_si256(r0, r1, 0x31);
                    // only two twiddles are needed: a 128-bit load keeps
                    // the read inside the slice, the permute duplicates
                    // each into its block's lane pair [s0 s0 s1 s1]
                    let tp = _mm256_castsi128_si256(_mm_loadu_si128(
                        tw.as_ptr().add(i) as *const __m128i
                    ));
                    let tsp = _mm256_castsi128_si256(_mm_loadu_si128(
                        tw_sh.as_ptr().add(i) as *const __m128i
                    ));
                    let sv = _mm256_permute4x64_epi64(tp, 0x50);
                    let sshv = _mm256_permute4x64_epi64(tsp, 0x50);
                    let s0 = csub(_mm256_add_epi64(u, v), two_qv, sign);
                    let d = _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v);
                    let vo = mul_shoup_lazy(d, sv, sshv, qv);
                    _mm256_storeu_si256(
                        ap.add(j1) as *mut __m256i,
                        _mm256_permute2x128_si256(s0, vo, 0x20),
                    );
                    _mm256_storeu_si256(
                        ap.add(j1 + 4) as *mut __m256i,
                        _mm256_permute2x128_si256(s0, vo, 0x31),
                    );
                    i += 2;
                }
                t <<= 1;
                m = h;
            }
            // Stages with t >= 4, stopping before the last (m == 2).
            while m > 2 {
                let h = m >> 1;
                let tw = &ipsi[h..2 * h];
                let tw_sh = &ipsi_sh[h..2 * h];
                let mut j1 = 0;
                for i in 0..h {
                    let sv = _mm256_set1_epi64x(tw[i] as i64);
                    let sshv = _mm256_set1_epi64x(tw_sh[i] as i64);
                    let mut j = 0;
                    while j < t {
                        let up = ap.add(j1 + j) as *mut __m256i;
                        let vp = ap.add(j1 + j + t) as *mut __m256i;
                        let u = _mm256_loadu_si256(up as *const _);
                        let v = _mm256_loadu_si256(vp as *const _);
                        let s0 = csub(_mm256_add_epi64(u, v), two_qv, sign);
                        let d = _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v);
                        _mm256_storeu_si256(up, s0);
                        _mm256_storeu_si256(vp, mul_shoup_lazy(d, sv, sshv, qv));
                        j += 4;
                    }
                    j1 += 2 * t;
                }
                t <<= 1;
                m = h;
            }
            // Last stage (m == 2): fold the N⁻¹ scaling. The strict Shoup
            // product fully reduces any u64 input, so outputs are [0, q).
            let half = n / 2;
            let ni = _mm256_set1_epi64x(sc.n_inv as i64);
            let ni_sh = _mm256_set1_epi64x(sc.n_inv_shoup as i64);
            let sni = _mm256_set1_epi64x(sc.s_n_inv as i64);
            let sni_sh = _mm256_set1_epi64x(sc.s_n_inv_shoup as i64);
            let mut j = 0;
            while j < half {
                let up = ap.add(j) as *mut __m256i;
                let vp = ap.add(j + half) as *mut __m256i;
                let u = _mm256_loadu_si256(up as *const _);
                let v = _mm256_loadu_si256(vp as *const _);
                let s0 = _mm256_add_epi64(u, v);
                let d = _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v);
                _mm256_storeu_si256(up, mul_shoup(s0, ni, ni_sh, qv, sign));
                _mm256_storeu_si256(vp, mul_shoup(d, sni, sni_sh, qv, sign));
                j += 4;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{add_mod, mul_mod, neg_mod, shoup_precompute, sub_mod};

    const Q: u64 = 0x1fff_ffff_ffe0_0001; // 61-bit NTT prime

    fn rng_seq(seed: u64, len: usize, bound: u64) -> Vec<u64> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s % bound
            })
            .collect()
    }

    #[test]
    fn barrett_vector_matches_scalar_everywhere() {
        // Exercises the vector Barrett path (through mul_pointwise) on
        // every variant, including the non-multiple-of-4 tail.
        for k in variants() {
            for len in [1usize, 3, 4, 7, 64, 65] {
                let a = rng_seq(1, len, Q);
                let b = rng_seq(2, len, Q);
                let mut dst = vec![0u64; len];
                (k.mul_pointwise)(&mut dst, &a, &b, Q);
                for i in 0..len {
                    assert_eq!(dst[i], mul_mod(a[i], b[i], Q), "{} len={len}", k.name);
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_match_reference() {
        for k in variants() {
            let len = 67; // deliberately not a multiple of the lane count
            let a0 = rng_seq(3, len, Q);
            let b = rng_seq(4, len, Q);
            let s = 0x1234_5678_9abc % Q;
            let s_sh = shoup_precompute(s, Q);

            let mut a = a0.clone();
            (k.add_assign)(&mut a, &b, Q);
            for i in 0..len {
                assert_eq!(a[i], add_mod(a0[i], b[i], Q), "add {}", k.name);
            }

            let mut a = a0.clone();
            (k.sub_assign)(&mut a, &b, Q);
            for i in 0..len {
                assert_eq!(a[i], sub_mod(a0[i], b[i], Q), "sub {}", k.name);
            }

            let mut a = a0.clone();
            a[0] = 0; // exercise the zero special-case
            let az = a.clone();
            (k.neg_assign)(&mut a, Q);
            for i in 0..len {
                assert_eq!(a[i], neg_mod(az[i], Q), "neg {}", k.name);
            }

            let mut d = rng_seq(5, len, Q);
            let d0 = d.clone();
            (k.add_mul)(&mut d, &a0, &b, Q);
            for i in 0..len {
                assert_eq!(
                    d[i],
                    add_mod(d0[i], mul_mod(a0[i], b[i], Q), Q),
                    "add_mul {}",
                    k.name
                );
            }

            let mut a = a0.clone();
            (k.scalar_mul_assign)(&mut a, s, s_sh, Q);
            for i in 0..len {
                assert_eq!(a[i], mul_mod(a0[i], s, Q), "scalar_mul {}", k.name);
            }

            let mut a = a0.clone();
            (k.sub_mul_assign)(&mut a, &b, s, s_sh, Q);
            for i in 0..len {
                assert_eq!(
                    a[i],
                    mul_mod(sub_mod(a0[i], b[i], Q), s, Q),
                    "sub_mul {}",
                    k.name
                );
            }

            let src = rng_seq(6, len, u64::MAX);
            let mut d = vec![0u64; len];
            (k.mod_reduce)(&mut d, &src, Q);
            for i in 0..len {
                assert_eq!(d[i], src[i] % Q, "mod_reduce {}", k.name);
            }
        }
    }

    #[test]
    fn centered_reduce_matches_i128_lift() {
        let src_q = Q;
        let dst_q = 0x0fff_ffff_ff00_0001u64; // smaller odd modulus
        for k in variants() {
            let len = 33;
            let mut src = rng_seq(7, len, src_q);
            src[0] = 0;
            src[1] = src_q - 1;
            src[2] = src_q / 2;
            src[3] = src_q / 2 + 1;
            let mut d = vec![0u64; len];
            (k.centered_reduce)(&mut d, &src, src_q, dst_q);
            for i in 0..len {
                let centered = crate::modular::center(src[i], src_q) as i128;
                assert_eq!(
                    d[i],
                    crate::modular::reduce_i128(centered, dst_q),
                    "{} i={i}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn ks_accum_matches_strict_inner_product() {
        for k in variants() {
            for (len, digits) in [(1usize, 1usize), (5, 2), (64, 3), (67, 7)] {
                let ds: Vec<Vec<u64>> = (0..digits)
                    .map(|i| rng_seq(10 + i as u64, len, Q))
                    .collect();
                let ks: Vec<Vec<u64>> = (0..digits)
                    .map(|i| rng_seq(20 + i as u64, len, Q))
                    .collect();
                let kss: Vec<Vec<u64>> = ks
                    .iter()
                    .map(|kv| kv.iter().map(|&x| shoup_precompute(x, Q)).collect())
                    .collect();
                let mut dst = rng_seq(30, len, Q);
                let d0 = dst.clone();
                let dref: Vec<&[u64]> = ds.iter().map(|v| v.as_slice()).collect();
                let kref: Vec<&[u64]> = ks.iter().map(|v| v.as_slice()).collect();
                let ksref: Vec<&[u64]> = kss.iter().map(|v| v.as_slice()).collect();
                (k.ks_accum)(&mut dst, &dref, &kref, &ksref, Q);
                for j in 0..len {
                    let mut expect = d0[j];
                    for i in 0..digits {
                        expect = add_mod(expect, mul_mod(ds[i][j], ks[i][j], Q), Q);
                    }
                    assert_eq!(dst[j], expect, "{} len={len} digits={digits}", k.name);
                }
            }
        }
    }

    #[test]
    fn dispatch_is_cached_and_labeled() {
        let k = kernels();
        assert!(k.name == "avx2" || k.name == "scalar");
        // Second call must hand back the identical table.
        assert!(std::ptr::eq(k, kernels()));
        assert_eq!(dispatch_name(), k.name);
    }
}
