//! Negacyclic Number Theoretic Transform over a single RNS prime.
//!
//! A polynomial in `Z_q[X]/(X^N + 1)` is moved between its coefficient
//! representation and its evaluation representation (values at the odd
//! powers of a primitive `2N`-th root of unity ψ). Pointwise products in the
//! evaluation domain are negacyclic convolutions in the coefficient domain,
//! which is what makes CKKS multiplication `O(N log N)` (paper §2.5).
//!
//! The butterflies follow Longa–Naehrig with Shoup precomputation. The
//! `*_lazy` entry points additionally use Harvey's lazy reduction: forward
//! butterflies keep values in `[0, 4q)` and inverse butterflies in
//! `[0, 2q)`, deferring the per-butterfly corrections to one final sweep.
//! Both paths produce bit-identical fully-reduced output.

use crate::modular::{
    add_mod, inv_mod, mul_mod, mul_mod_shoup, pow_mod, shoup_precompute, sub_mod,
};
use crate::primes::primitive_2n_root;
use crate::simd::{self, InvScale};
use std::sync::OnceLock;

/// Precomputed twiddle tables for the negacyclic NTT modulo one prime.
///
/// Only the forward tables are built eagerly; the inverse tables (needed by
/// decryption/rescale/decompose but not by encode-only paths) are built on
/// first use, halving `new`'s cost in prepare-time profiles.
#[derive(Clone)]
pub struct NttTable {
    /// Ring degree (power of two).
    pub n: usize,
    /// The prime modulus.
    pub q: u64,
    /// ψ, a primitive 2N-th root of unity mod q.
    pub psi: u64,
    /// ψ powers in bit-reversed order.
    psi_brv: Vec<u64>,
    psi_brv_shoup: Vec<u64>,
    /// Inverse-direction tables, built lazily on first inverse transform.
    inv: OnceLock<InvTables>,
}

/// ψ⁻¹ twiddles and the N⁻¹ scaling constants, including N⁻¹
/// pre-multiplied into the single last-stage twiddle `ψ⁻¹_brv[1]` so the
/// lazy kernel can fold the scaling into the final butterfly stage.
#[derive(Clone)]
struct InvTables {
    inv_psi_brv: Vec<u64>,
    inv_psi_brv_shoup: Vec<u64>,
    scale: InvScale,
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Successive powers of `base` (starting at 1) in bit-reversed order, each
/// paired with its Shoup constant. The power chain itself runs on Shoup
/// multiplication — no `u128 %` in the loop.
fn powers_brv(base: u64, n: usize, q: u64) -> (Vec<u64>, Vec<u64>) {
    let bits = n.trailing_zeros();
    let base_shoup = shoup_precompute(base, q);
    let mut pows = vec![0u64; n];
    let mut p = 1u64;
    for slot in pows.iter_mut() {
        *slot = p;
        p = mul_mod_shoup(p, base, base_shoup, q);
    }
    let brv: Vec<u64> = (0..n).map(|i| pows[bit_reverse(i, bits)]).collect();
    let brv_shoup = brv.iter().map(|&x| shoup_precompute(x, q)).collect();
    (brv, brv_shoup)
}

impl NttTable {
    /// Builds the table for ring degree `n` and prime `q ≡ 1 (mod 2n)`.
    pub fn new(n: usize, q: u64) -> Self {
        assert!(n.is_power_of_two() && n >= 2);
        debug_assert!(q < 1 << 62, "lazy reduction needs 4q < 2^64");
        let psi = primitive_2n_root(q, n);
        let (psi_brv, psi_brv_shoup) = powers_brv(psi, n, q);
        Self {
            n,
            q,
            psi,
            psi_brv,
            psi_brv_shoup,
            inv: OnceLock::new(),
        }
    }

    /// Inverse-table access: the hot path is one atomic load plus a
    /// predictable branch; the one-time build lives out of line.
    #[inline]
    fn inv_tables(&self) -> &InvTables {
        match self.inv.get() {
            Some(t) => t,
            None => self.build_inv_tables(),
        }
    }

    #[cold]
    fn build_inv_tables(&self) -> &InvTables {
        self.inv.get_or_init(|| {
            let (n, q) = (self.n, self.q);
            let inv_psi = inv_mod(self.psi, q);
            let (inv_psi_brv, inv_psi_brv_shoup) = powers_brv(inv_psi, n, q);
            let n_inv = inv_mod(n as u64 % q, q);
            // ψ⁻¹_brv[1]·N⁻¹: the last inverse stage has exactly one
            // twiddle, so N⁻¹ folds into it for free.
            let s_n_inv = mul_mod(inv_psi_brv[1], n_inv, q);
            InvTables {
                inv_psi_brv,
                inv_psi_brv_shoup,
                scale: InvScale {
                    n_inv,
                    n_inv_shoup: shoup_precompute(n_inv, q),
                    s_n_inv,
                    s_n_inv_shoup: shoup_precompute(s_n_inv, q),
                },
            }
        })
    }

    /// In-place forward NTT: coefficient → evaluation representation.
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let n = self.n;
        let mut t = n;
        let mut m = 1;
        while m < n {
            t >>= 1;
            // Per-stage twiddle subslices keep the inner loop free of
            // table-offset arithmetic the compiler can't hoist itself.
            let tw = &self.psi_brv[m..2 * m];
            let tw_sh = &self.psi_brv_shoup[m..2 * m];
            for i in 0..m {
                let j1 = 2 * i * t;
                let (s, s_sh) = (tw[i], tw_sh[i]);
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod_shoup(a[j + t], s, s_sh, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse NTT: evaluation → coefficient representation.
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let it = self.inv_tables();
        let q = self.q;
        let n = self.n;
        let mut t = 1;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let tw = &it.inv_psi_brv[h..2 * h];
            let tw_sh = &it.inv_psi_brv_shoup[h..2 * h];
            let mut j1 = 0;
            for i in 0..h {
                let (s, s_sh) = (tw[i], tw_sh[i]);
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod_shoup(sub_mod(u, v, q), s, s_sh, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod_shoup(*x, it.scale.n_inv, it.scale.n_inv_shoup, q);
        }
    }

    /// In-place forward NTT with Harvey lazy reduction, dispatched to the
    /// process-wide kernel class (AVX2 or unrolled scalar). Butterflies
    /// keep values in `[0, 4q)`; the final full-reduction sweep is folded
    /// into the last butterfly stage. Bit-identical to
    /// [`NttTable::forward`] on every dispatch class.
    pub fn forward_lazy(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        (simd::kernels().ntt_fwd_lazy)(a, &self.psi_brv, &self.psi_brv_shoup, self.q);
    }

    /// In-place inverse NTT with lazy reduction, dispatched like
    /// [`NttTable::forward_lazy`]. Butterflies keep values in `[0, 2q)`;
    /// the N⁻¹ scaling is folded into the single-twiddle last stage.
    /// Bit-identical to [`NttTable::inverse`] on every dispatch class.
    pub fn inverse_lazy(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let it = self.inv_tables();
        (simd::kernels().ntt_inv_lazy)(a, &it.inv_psi_brv, &it.inv_psi_brv_shoup, it.scale, self.q);
    }

    /// Like [`NttTable::forward_lazy`] but with an explicit kernel table —
    /// used by equivalence tests and simd-vs-scalar benches.
    pub fn forward_lazy_with(&self, k: &simd::Kernels, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        (k.ntt_fwd_lazy)(a, &self.psi_brv, &self.psi_brv_shoup, self.q);
    }

    /// Like [`NttTable::inverse_lazy`] but with an explicit kernel table.
    pub fn inverse_lazy_with(&self, k: &simd::Kernels, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let it = self.inv_tables();
        (k.ntt_inv_lazy)(a, &it.inv_psi_brv, &it.inv_psi_brv_shoup, it.scale, self.q);
    }

    /// Returns, for each evaluation-domain index `i`, the exponent `e(i)`
    /// (odd, in `[0, 2N)`) such that slot `i` holds the polynomial evaluated
    /// at ψ^e(i).
    ///
    /// This map is what lets Galois automorphisms `X → X^g` be applied in
    /// the evaluation domain as a pure index permutation (used by hoisted
    /// rotations): the automorphism moves the value at point ψ^{g·e} to the
    /// slot evaluating at ψ^{e}. The map is derived by probing the transform
    /// with the monomial `X`, making it robust to the butterfly ordering.
    pub fn exponent_map(&self) -> Vec<usize> {
        let n = self.n;
        // value → exponent lookup for odd exponents
        let mut val_to_exp = std::collections::HashMap::with_capacity(n);
        for e in (1..2 * n).step_by(2) {
            val_to_exp.insert(pow_mod(self.psi, e as u64, self.q), e);
        }
        let mut x = vec![0u64; n];
        x[1] = 1; // the monomial X
        self.forward(&mut x);
        x.iter()
            .map(|v| {
                *val_to_exp
                    .get(v)
                    .expect("NTT output must be a power of psi")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mul_mod;
    use crate::primes::generate_ntt_primes;

    fn naive_negacyclic(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let n = a.len();
        let mut c = vec![0i128; n];
        for i in 0..n {
            for j in 0..n {
                let prod = mul_mod(a[i], b[j], q) as i128;
                let k = i + j;
                if k < n {
                    c[k] += prod;
                } else {
                    c[k - n] -= prod;
                }
            }
        }
        c.into_iter()
            .map(|x| crate::modular::reduce_i128(x, q))
            .collect()
    }

    #[test]
    fn roundtrip() {
        let n = 1 << 8;
        let q = generate_ntt_primes(n, 50, 1, &[])[0];
        let t = NttTable::new(n, q);
        let orig: Vec<u64> = (0..n as u64).map(|i| (i * i + 7) % q).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_is_negacyclic_convolution() {
        let n = 64;
        let q = generate_ntt_primes(n, 45, 1, &[])[0];
        let t = NttTable::new(n, q);
        let a: Vec<u64> = (0..n as u64).map(|i| (3 * i + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * i + 5) % q).collect();
        let expect = naive_negacyclic(&a, &b, q);
        let mut ea = a.clone();
        let mut eb = b.clone();
        t.forward(&mut ea);
        t.forward(&mut eb);
        let mut ec: Vec<u64> = ea
            .iter()
            .zip(&eb)
            .map(|(&x, &y)| mul_mod(x, y, q))
            .collect();
        t.inverse(&mut ec);
        assert_eq!(ec, expect);
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // (X^{n/2})² = X^n ≡ -1 in the negacyclic ring.
        let n = 32;
        let q = generate_ntt_primes(n, 40, 1, &[])[0];
        let t = NttTable::new(n, q);
        let mut a = vec![0u64; n];
        a[n / 2] = 1;
        let mut ea = a.clone();
        t.forward(&mut ea);
        let mut sq: Vec<u64> = ea.iter().map(|&x| mul_mod(x, x, q)).collect();
        t.inverse(&mut sq);
        let mut expect = vec![0u64; n];
        expect[0] = q - 1;
        assert_eq!(sq, expect);
    }

    #[test]
    fn lazy_paths_match_strict_bit_exact() {
        for n in [16usize, 256, 1 << 10] {
            let q = generate_ntt_primes(n, 55, 1, &[])[0];
            let t = NttTable::new(n, q);
            let orig: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % q)
                .collect();
            let mut strict = orig.clone();
            let mut lazy = orig.clone();
            t.forward(&mut strict);
            t.forward_lazy(&mut lazy);
            assert_eq!(strict, lazy, "forward n={n}");
            t.inverse(&mut strict);
            t.inverse_lazy(&mut lazy);
            assert_eq!(strict, lazy, "inverse n={n}");
            assert_eq!(lazy, orig, "roundtrip n={n}");
        }
    }

    #[test]
    fn exponent_map_is_consistent() {
        let n = 64;
        let q = generate_ntt_primes(n, 40, 1, &[])[0];
        let t = NttTable::new(n, q);
        let em = t.exponent_map();
        // All odd, all distinct, covering each residue class once.
        let mut seen = std::collections::HashSet::new();
        for &e in &em {
            assert_eq!(e % 2, 1);
            assert!(seen.insert(e));
        }
        assert_eq!(seen.len(), n);
        // Check against a random polynomial: slot i must equal p(psi^{e(i)}).
        let poly: Vec<u64> = (0..n as u64).map(|i| (5 * i + 2) % q).collect();
        let mut ev = poly.clone();
        t.forward(&mut ev);
        for i in (0..n).step_by(7) {
            let point = pow_mod(t.psi, em[i] as u64, q);
            let mut acc = 0u64;
            for j in (0..n).rev() {
                acc = add_mod(mul_mod(acc, point, q), poly[j], q);
            }
            assert_eq!(ev[i], acc);
        }
    }
}
