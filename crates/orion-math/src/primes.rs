//! NTT-friendly prime generation.
//!
//! RNS-CKKS needs a chain of primes `q_i ≡ 1 (mod 2N)` so that the
//! negacyclic NTT exists modulo each one, with `log2(q_i)` close to the
//! scaling factor Δ so rescaling keeps the scale stable (paper §2.4).

use crate::modular::is_prime;

/// Generates `count` distinct primes `p ≡ 1 (mod 2n)` with `log2(p)` as
/// close as possible to `bits`, searching downward then upward from
/// `2^bits + 1`.
///
/// Returned primes are distinct from every element of `exclude`.
///
/// # Panics
/// Panics if `bits >= 62` (products must fit our `u128` arithmetic
/// comfortably) or if not enough primes exist in range (never happens for
/// realistic `n`, `bits`).
pub fn generate_ntt_primes(n: usize, bits: u32, count: usize, exclude: &[u64]) -> Vec<u64> {
    assert!(
        (20..62).contains(&bits),
        "prime size out of supported range"
    );
    assert!(n.is_power_of_two());
    let step = 2 * n as u64;
    let target = 1u64 << bits;
    // First candidate ≡ 1 mod 2N at or below the target.
    let mut down = target - (target % step) + 1;
    if down > target {
        down -= step;
    }
    let mut up = down + step;
    let mut found = Vec::with_capacity(count);
    let lo = target >> 1;
    let hi = target << 1;
    while found.len() < count {
        if down > lo {
            if is_prime(down) && !exclude.contains(&down) && !found.contains(&down) {
                found.push(down);
                if found.len() == count {
                    break;
                }
            }
            down -= step;
        }
        if up < hi {
            if is_prime(up) && !exclude.contains(&up) && !found.contains(&up) {
                found.push(up);
            }
            up += step;
        }
        assert!(
            down > lo || up < hi,
            "exhausted prime search range for n={n} bits={bits}"
        );
    }
    found
}

/// Finds a generator of the multiplicative group of `Z_q` (`q` prime).
pub fn primitive_root(q: u64) -> u64 {
    // Factor q-1 (trial division is fine for our 40-60 bit primes because
    // q-1 is divisible by a large power of two, leaving a small cofactor).
    let mut factors = Vec::new();
    let mut m = q - 1;
    let mut d = 2u64;
    while d * d <= m {
        if m.is_multiple_of(d) {
            factors.push(d);
            while m.is_multiple_of(d) {
                m /= d;
            }
        }
        d += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    'cand: for g in 2..q {
        for &f in &factors {
            if crate::modular::pow_mod(g, (q - 1) / f, q) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("prime fields always have generators")
}

/// Returns a primitive `2n`-th root of unity modulo `q` (requires
/// `q ≡ 1 mod 2n`).
pub fn primitive_2n_root(q: u64, n: usize) -> u64 {
    let order = 2 * n as u64;
    assert_eq!((q - 1) % order, 0, "q is not NTT-friendly for this n");
    let g = primitive_root(q);
    let root = crate::modular::pow_mod(g, (q - 1) / order, q);
    debug_assert_eq!(crate::modular::pow_mod(root, order, q), 1);
    debug_assert_ne!(crate::modular::pow_mod(root, order / 2, q), 1);
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::pow_mod;

    #[test]
    fn generates_requested_count() {
        let ps = generate_ntt_primes(1 << 10, 40, 8, &[]);
        assert_eq!(ps.len(), 8);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!((p - 1) % (2 << 10), 0);
            // within a factor of 2 of the target
            assert!(p > (1 << 39) && p < (1 << 41));
        }
        // all distinct
        let mut s = ps.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn respects_exclusions() {
        let first = generate_ntt_primes(1 << 8, 30, 3, &[]);
        let second = generate_ntt_primes(1 << 8, 30, 3, &first);
        for p in &second {
            assert!(!first.contains(p));
        }
    }

    #[test]
    fn roots_have_exact_order() {
        let n = 1 << 8;
        for &p in &generate_ntt_primes(n, 45, 3, &[]) {
            let w = primitive_2n_root(p, n);
            assert_eq!(pow_mod(w, 2 * n as u64, p), 1);
            assert_ne!(pow_mod(w, n as u64, p), 1);
            // order exactly 2n: w^n must be -1
            assert_eq!(pow_mod(w, n as u64, p), p - 1);
        }
    }
}
