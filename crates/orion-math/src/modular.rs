//! Arithmetic over `u64` prime moduli.
//!
//! All moduli used in Orion are < 2⁶², so products fit comfortably in
//! `u128`. Inputs are assumed fully reduced (`x < q`) unless a function says
//! otherwise; outputs are always fully reduced.

/// Adds two residues modulo `q`.
#[inline(always)]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
#[inline(always)]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates `a` modulo `q`.
#[inline(always)]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q);
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Multiplies two residues modulo `q` via 128-bit widening.
#[inline(always)]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Precomputed constant for Shoup multiplication: `⌊b·2⁶⁴/q⌋`.
///
/// Shoup's trick turns a multiplication by a *fixed* operand `b` into one
/// `u128` high-multiply and one correction, which is what makes the NTT
/// butterflies fast.
#[inline(always)]
pub fn shoup_precompute(b: u64, q: u64) -> u64 {
    (((b as u128) << 64) / q as u128) as u64
}

/// Multiplies `a` by a fixed operand `b` with its Shoup precomputation
/// `b_shoup = ⌊b·2⁶⁴/q⌋`. Requires `b < q`.
#[inline(always)]
pub fn mul_mod_shoup(a: u64, b: u64, b_shoup: u64, q: u64) -> u64 {
    let hi = ((a as u128 * b_shoup as u128) >> 64) as u64;
    let r = (a.wrapping_mul(b)).wrapping_sub(hi.wrapping_mul(q));
    if r >= q {
        r - q
    } else {
        r
    }
}

/// Shoup multiplication *without* the final correction: returns a value
/// congruent to `a·b (mod q)` in `[0, 2q)`.
///
/// This is the Harvey lazy-butterfly primitive. Unlike [`mul_mod_shoup`],
/// the input `a` may be **any** `u64` (in particular a lazily-reduced value
/// in `[0, 4q)`): with `h = ⌊a·b_shoup/2⁶⁴⌋` the remainder
/// `a·b − h·q` always lies in `[0, a·q/2⁶⁴ + q) ⊆ [0, 2q)`. Requires
/// `b < q` and `q < 2⁶³` so the result is unambiguous in wrapping `u64`
/// arithmetic (Orion moduli are < 2⁶²).
#[inline(always)]
pub fn mul_mod_shoup_lazy(a: u64, b: u64, b_shoup: u64, q: u64) -> u64 {
    let hi = ((a as u128 * b_shoup as u128) >> 64) as u64;
    a.wrapping_mul(b).wrapping_sub(hi.wrapping_mul(q))
}

/// Precomputed Barrett constant `⌊2¹²⁸/q⌋` for exact division-free
/// reduction of products `a·b` with both operands *variable* (Shoup
/// multiplication needs one operand fixed; this does not).
///
/// For any `x < q·2⁶⁴` the quotient estimate
/// `e = ⌊x·⌊2¹²⁸/q⌋ / 2¹²⁸⌋` satisfies `⌊x/q⌋ − 1 ≤ e ≤ ⌊x/q⌋`, so a
/// single conditional subtract makes the remainder exact. Requires `q`
/// odd (true for every NTT prime), which guarantees `⌊2¹²⁸/q⌋ =
/// ⌊(2¹²⁸−1)/q⌋` and lets the constant be computed in `u128`.
#[derive(Clone, Copy, Debug)]
pub struct Barrett {
    pub q: u64,
    ratio_lo: u64,
    ratio_hi: u64,
}

impl Barrett {
    /// Builds the constant for an odd modulus `q < 2⁶²`.
    #[inline]
    pub fn new(q: u64) -> Self {
        debug_assert!(q & 1 == 1, "Barrett constant requires an odd modulus");
        debug_assert!(q < 1 << 62);
        let ratio = u128::MAX / q as u128; // == ⌊2¹²⁸/q⌋ for odd q
        Self {
            q,
            ratio_lo: ratio as u64,
            ratio_hi: (ratio >> 64) as u64,
        }
    }

    /// Reduces `x < q·2⁶⁴` into `[0, q)`. Exact (error of the quotient
    /// estimate is at most 1, fixed by one conditional subtract).
    #[inline(always)]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        let (x_lo, x_hi) = (x as u64, (x >> 64) as u64);
        // 192-bit estimate of ⌊x·ratio / 2¹²⁸⌋, keeping only the low 64
        // bits of the quotient (the true quotient fits: x/q < 2⁶⁴).
        let carry = ((x_lo as u128 * self.ratio_lo as u128) >> 64) as u64;
        let b = x_lo as u128 * self.ratio_hi as u128;
        let (mid, c1) = (b as u64).overflowing_add(carry);
        let b_hi = (b >> 64) as u64 + c1 as u64;
        let c = x_hi as u128 * self.ratio_lo as u128;
        let (_, c2) = mid.overflowing_add(c as u64);
        let carry2 = (c >> 64) as u64 + c2 as u64;
        let est = x_hi
            .wrapping_mul(self.ratio_hi)
            .wrapping_add(b_hi)
            .wrapping_add(carry2);
        let r = x_lo.wrapping_sub(est.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Multiplies two residues (`a, b < q`) modulo `q` without division.
    /// Bit-identical to [`mul_mod`].
    #[inline(always)]
    pub fn mul_mod(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Reduces an arbitrary `u64` into `[0, q)`. Bit-identical to `x % q`.
    #[inline(always)]
    pub fn reduce_u64(&self, x: u64) -> u64 {
        self.reduce_u128(x as u128)
    }
}

/// Raises `a` to the power `e` modulo `q` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64, q: u64) -> u64 {
    let mut r: u64 = 1 % q;
    a %= q;
    while e > 0 {
        if e & 1 == 1 {
            r = mul_mod(r, a, q);
        }
        a = mul_mod(a, a, q);
        e >>= 1;
    }
    r
}

/// Computes the multiplicative inverse of `a` modulo prime `q` via Fermat's
/// little theorem. Panics if `a == 0`.
pub fn inv_mod(a: u64, q: u64) -> u64 {
    assert!(!a.is_multiple_of(q), "zero has no modular inverse");
    pow_mod(a, q - 2, q)
}

/// Reduces a signed integer into `[0, q)`.
#[inline(always)]
pub fn reduce_i128(x: i128, q: u64) -> u64 {
    let r = x.rem_euclid(q as i128);
    r as u64
}

/// Centers a residue into `(-q/2, q/2]` as a signed integer.
#[inline(always)]
pub fn center(x: u64, q: u64) -> i64 {
    debug_assert!(x < q);
    if x > q / 2 {
        x as i64 - q as i64
    } else {
        x as i64
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    // This witness set is exact for all 64-bit integers.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = (1 << 40) + 0x6001; // not prime necessarily; fine for add/sub

    #[test]
    fn add_wraps() {
        assert_eq!(add_mod(Q - 1, 1, Q), 0);
        assert_eq!(add_mod(Q - 1, 2, Q), 1);
        assert_eq!(add_mod(0, 0, Q), 0);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(sub_mod(0, 1, Q), Q - 1);
        assert_eq!(sub_mod(5, 3, Q), 2);
    }

    #[test]
    fn neg_is_additive_inverse() {
        for a in [0u64, 1, 17, Q - 1] {
            assert_eq!(add_mod(a, neg_mod(a, Q), Q), 0);
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_003), 1024);
        assert_eq!(pow_mod(7, 0, 11), 1);
        assert_eq!(pow_mod(0, 5, 11), 0);
    }

    #[test]
    fn inverse_roundtrip() {
        let q = 1_000_003; // prime
        for a in [1u64, 2, 999_999, 123_456] {
            let inv = inv_mod(a, q);
            assert_eq!(mul_mod(a, inv, q), 1);
        }
    }

    #[test]
    fn shoup_matches_plain_mul() {
        let q = 0x1fff_ffff_ffe0_0001u64; // a 61-bit prime used by SEAL
        assert!(is_prime(q));
        let b = 0x1234_5678_9abc_def0 % q;
        let bs = shoup_precompute(b, q);
        for a in [0u64, 1, q - 1, q / 2, 0xdead_beef] {
            assert_eq!(mul_mod_shoup(a, b, bs, q), mul_mod(a, b, q));
        }
    }

    #[test]
    fn lazy_shoup_stays_below_2q_for_unreduced_inputs() {
        let q = 0x1fff_ffff_ffe0_0001u64; // 61-bit prime
        let b = 0x00da_bbad_00b5_00b5_u64 % q;
        let bs = shoup_precompute(b, q);
        // `a` ranges over fully-reduced, lazily-reduced ([0, 4q)) and
        // arbitrary u64 values — the lazy product must stay in [0, 2q)
        // and agree with plain multiplication mod q.
        for a in [0u64, 1, q - 1, q, 2 * q - 1, 3 * q + 17, u64::MAX] {
            let r = mul_mod_shoup_lazy(a, b, bs, q);
            assert!(r < 2 * q, "a={a}: lazy result {r} out of [0, 2q)");
            assert_eq!(r % q, mul_mod(a % q, b, q), "a={a}");
        }
    }

    #[test]
    fn center_symmetry() {
        let q = 101;
        assert_eq!(center(0, q), 0);
        assert_eq!(center(50, q), 50);
        assert_eq!(center(51, q), -50);
        assert_eq!(center(100, q), -1);
    }

    #[test]
    fn miller_rabin_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(is_prime(0x1fff_ffff_ffe0_0001));
        assert!(!is_prime((1u64 << 40) + 2));
    }

    #[test]
    fn reduce_negative() {
        assert_eq!(reduce_i128(-1, 7), 6);
        assert_eq!(reduce_i128(-14, 7), 0);
        assert_eq!(reduce_i128(15, 7), 1);
    }
}
