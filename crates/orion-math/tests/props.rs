//! Property-based tests for the math substrate.

use orion_math::fft::{Complex, SpecialFft};
use orion_math::modular::{add_mod, inv_mod, mul_mod, neg_mod, pow_mod, sub_mod};
use orion_math::ntt::NttTable;
use orion_math::primes::generate_ntt_primes;
use orion_math::rns::crt_reconstruct_centered;
use proptest::prelude::*;

const Q: u64 = 0x1fff_ffff_ffe0_0001; // 61-bit prime

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_sub_inverse(a in 0..Q, b in 0..Q) {
        prop_assert_eq!(sub_mod(add_mod(a, b, Q), b, Q), a);
        prop_assert_eq!(add_mod(a, neg_mod(a, Q), Q), 0);
    }

    #[test]
    fn mul_distributes_over_add(a in 0..Q, b in 0..Q, c in 0..Q) {
        let lhs = mul_mod(a, add_mod(b, c, Q), Q);
        let rhs = add_mod(mul_mod(a, b, Q), mul_mod(a, c, Q), Q);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn fermat_inverse(a in 1..Q) {
        prop_assert_eq!(mul_mod(a, inv_mod(a, Q), Q), 1);
    }

    #[test]
    fn pow_is_repeated_multiplication(a in 0..Q, e in 0u64..16) {
        let mut expect = 1u64;
        for _ in 0..e {
            expect = mul_mod(expect, a, Q);
        }
        prop_assert_eq!(pow_mod(a, e, Q), expect);
    }

    /// NTT is linear: NTT(a + b) = NTT(a) + NTT(b).
    #[test]
    fn ntt_is_linear(seed in 0u64..5000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = 64;
        let q = generate_ntt_primes(n, 45, 1, &[])[0];
        let table = NttTable::new(n, q);
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();
        let mut ea = a.clone();
        let mut eb = b.clone();
        let mut es = sum.clone();
        table.forward(&mut ea);
        table.forward(&mut eb);
        table.forward(&mut es);
        for i in 0..n {
            prop_assert_eq!(es[i], add_mod(ea[i], eb[i], q));
        }
    }

    /// Harvey lazy-reduction NTT is bit-exact against the strict path for
    /// random primes (30–59 bits) and degrees (16–1024), both directions,
    /// including the roundtrip back to the original coefficients.
    #[test]
    fn lazy_ntt_matches_strict(log_n in 4usize..11, bits_off in 0u32..30, seed in 0u64..1_000_000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = 1usize << log_n;
        let bits = 30 + bits_off; // prime size in [30, 60)
        let q = generate_ntt_primes(n, bits, 1, &[])[0];
        let table = NttTable::new(n, q);
        let mut rng = StdRng::seed_from_u64(seed);
        let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut strict = orig.clone();
        let mut lazy = orig.clone();
        table.forward(&mut strict);
        table.forward_lazy(&mut lazy);
        prop_assert_eq!(&strict, &lazy);
        prop_assert!(lazy.iter().all(|&x| x < q));
        table.inverse(&mut strict);
        table.inverse_lazy(&mut lazy);
        prop_assert_eq!(&strict, &lazy);
        prop_assert_eq!(&lazy, &orig);
    }

    /// Negacyclic wrap: X^{n-1} · X = -1 in the ring.
    #[test]
    fn negacyclic_wraparound(c in 1u64..1000) {
        let n = 32;
        let q = generate_ntt_primes(n, 40, 1, &[])[0];
        let table = NttTable::new(n, q);
        let mut a = vec![0u64; n];
        a[n - 1] = c; // c·X^{n-1}
        let mut x = vec![0u64; n];
        x[1] = 1; // X
        table.forward(&mut a);
        table.forward(&mut x);
        let mut prod: Vec<u64> = a.iter().zip(&x).map(|(&u, &v)| mul_mod(u, v, q)).collect();
        table.inverse(&mut prod);
        prop_assert_eq!(prod[0], q - c); // -c
        prop_assert!(prod[1..].iter().all(|&v| v == 0));
    }

    /// Special FFT: Parseval-ish energy preservation under round-trip.
    #[test]
    fn special_fft_roundtrip_arbitrary(seed in 0u64..5000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = 128;
        let fft = SpecialFft::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let orig: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let mut v = orig.clone();
        fft.inverse(&mut v);
        fft.forward(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((*a - *b).norm_sqr().sqrt() < 1e-8);
        }
    }

    /// CRT reconstruction matches direct arithmetic for 2-limb cases.
    #[test]
    fn crt_two_limbs(x in -1_000_000_000i64..1_000_000_000) {
        let moduli = [2_147_483_647u64, 2_147_483_629]; // both prime
        let limbs: Vec<u64> = moduli.iter().map(|&q| (x as i128).rem_euclid(q as i128) as u64).collect();
        prop_assert_eq!(crt_reconstruct_centered(&limbs, &moduli), x as i128);
    }
}
