//! Concurrency stress for the limb arena: many tasks on the shared rayon
//! pool borrowing and returning buffers at once. Verifies the arena's
//! invariants under contention — exact lengths, zeroing of non-raw takes,
//! and no two live buffers sharing storage.

use orion_math::{arena, parallel};

#[test]
fn concurrent_take_recycle_holds_invariants() {
    let tags: Vec<u64> = (0..64).map(|i| 0x1000 + i).collect();
    parallel::scope(|s| {
        for &tag in &tags {
            s.spawn(move |_| {
                for round in 0..50u32 {
                    // Two live u64 buffers of the same length must be
                    // distinct storage (the freelist pops, never shares).
                    let mut a = arena::take_u64(777);
                    let mut b = arena::take_u64_raw(777);
                    assert_ne!(a.as_ptr(), b.as_ptr(), "aliased buffers");
                    assert_eq!(a.len(), 777);
                    assert_eq!(b.len(), 777);
                    assert!(
                        a.iter().all(|&x| x == 0),
                        "take_u64 returned dirty buffer (round {round})"
                    );
                    a.fill(tag);
                    b.fill(tag ^ 0xffff);
                    assert!(a.iter().all(|&x| x == tag));
                    assert!(b.iter().all(|&x| x == tag ^ 0xffff));
                    arena::recycle_u64(a);
                    arena::recycle_u64(b);

                    // Mixed lengths and element types in flight at once.
                    let mut c = arena::take_i128(33);
                    let d = arena::take_i128_raw(65);
                    assert!(c.iter().all(|&x| x == 0));
                    assert_eq!(d.len(), 65);
                    c.fill(tag as i128);
                    arena::recycle_i128(c);
                    arena::recycle_i128(d);

                    // Guards recycle through drop under contention too.
                    let mut g = arena::scratch_u64(129);
                    g[128] = tag;
                    drop(g);
                }
            });
        }
    });
}

#[test]
fn recycled_buffers_are_actually_reused() {
    // Sequential sanity: a take after a recycle of the same length is a
    // pool hit, and its contents were re-zeroed.
    let mut b = arena::take_u64(12_345);
    b.fill(u64::MAX);
    arena::recycle_u64(b);
    let before = arena::stats_u64();
    let b2 = arena::take_u64(12_345);
    let after = arena::stats_u64();
    assert_eq!(after.hits, before.hits + 1);
    assert!(b2.iter().all(|&x| x == 0));
}
