//! SIMD-vs-scalar bit-exactness properties.
//!
//! Every kernel variant reachable on this host (`simd::variants()`) must be
//! bit-identical to the strict scalar reference for random primes across
//! the full supported size range (30–62 bits), all transform degrees, and
//! buffer lengths that are not multiples of the vector lane count (tail
//! handling). These run regardless of `ORION_SIMD`, so the vector paths
//! are exercised even when dispatch is forced off.

use orion_math::modular::{add_mod, mul_mod, neg_mod, reduce_i128, shoup_precompute, sub_mod};
use orion_math::ntt::NttTable;
use orion_math::primes::generate_ntt_primes;
use orion_math::simd;
use proptest::prelude::*;

fn random_prime(n: usize, bits_off: u32, seed: u64) -> u64 {
    // Prime size in [30, 62): the full range the kernels support.
    let bits = 30 + bits_off % 32;
    generate_ntt_primes(n.max(16), bits, 1, &[seed % 2])[0]
}

fn fill(rng: &mut impl rand::Rng, len: usize, bound: u64) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..bound)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whole-transform lazy NTT kernels (every variant) are bit-exact
    /// against the strict per-butterfly path, both directions, for all
    /// degrees 4..2048 — including the sub-vector sizes that take the
    /// scalar fallback inside the AVX2 table.
    #[test]
    fn ntt_kernels_match_strict(log_n in 2usize..12, bits_off in 0u32..32, seed in 0u64..1_000_000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = 1usize << log_n;
        let q = random_prime(n, bits_off, seed);
        let table = NttTable::new(n, q);
        let mut rng = StdRng::seed_from_u64(seed);
        let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut strict = orig.clone();
        table.forward(&mut strict);
        for k in simd::variants() {
            let mut v = orig.clone();
            table.forward_lazy_with(k, &mut v);
            prop_assert_eq!(&v, &strict, "forward mismatch for {}", k.name);
        }
        let mut inv_strict = strict.clone();
        table.inverse(&mut inv_strict);
        prop_assert_eq!(&inv_strict, &orig);
        for k in simd::variants() {
            let mut v = strict.clone();
            table.inverse_lazy_with(k, &mut v);
            prop_assert_eq!(&v, &orig, "inverse mismatch for {}", k.name);
        }
    }

    /// Elementwise kernels match the strict modular reference on lengths
    /// that are not multiples of the 4-lane width (tail handling), for
    /// random primes across the supported size range.
    #[test]
    fn pointwise_kernels_match_reference(len in 1usize..130, bits_off in 0u32..32, seed in 0u64..1_000_000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let q = random_prime(16, bits_off, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let a = fill(&mut rng, len, q);
        let b = fill(&mut rng, len, q);
        let d = fill(&mut rng, len, q);
        let s = rng.gen_range(0..q);
        let s_sh = shoup_precompute(s, q);
        let raw = fill(&mut rng, len, u64::MAX);
        for k in simd::variants() {
            let mut v = a.clone();
            (k.add_assign)(&mut v, &b, q);
            for i in 0..len {
                prop_assert_eq!(v[i], add_mod(a[i], b[i], q), "{} add[{}]", k.name, i);
            }
            let mut v = a.clone();
            (k.sub_assign)(&mut v, &b, q);
            for i in 0..len {
                prop_assert_eq!(v[i], sub_mod(a[i], b[i], q), "{} sub[{}]", k.name, i);
            }
            let mut v = a.clone();
            (k.neg_assign)(&mut v, q);
            for i in 0..len {
                prop_assert_eq!(v[i], neg_mod(a[i], q), "{} neg[{}]", k.name, i);
            }
            let mut v = vec![0u64; len];
            (k.mul_pointwise)(&mut v, &a, &b, q);
            for i in 0..len {
                prop_assert_eq!(v[i], mul_mod(a[i], b[i], q), "{} mul[{}]", k.name, i);
            }
            let mut v = d.clone();
            (k.add_mul)(&mut v, &a, &b, q);
            for i in 0..len {
                prop_assert_eq!(v[i], add_mod(d[i], mul_mod(a[i], b[i], q), q), "{} mac[{}]", k.name, i);
            }
            let mut v = a.clone();
            (k.scalar_mul_assign)(&mut v, s, s_sh, q);
            for i in 0..len {
                prop_assert_eq!(v[i], mul_mod(a[i], s, q), "{} smul[{}]", k.name, i);
            }
            let mut v = a.clone();
            (k.sub_mul_assign)(&mut v, &b, s, s_sh, q);
            for i in 0..len {
                prop_assert_eq!(v[i], mul_mod(sub_mod(a[i], b[i], q), s, q), "{} submul[{}]", k.name, i);
            }
            let mut v = vec![0u64; len];
            (k.mod_reduce)(&mut v, &raw, q);
            for i in 0..len {
                prop_assert_eq!(v[i], raw[i] % q, "{} modred[{}]", k.name, i);
            }
        }
    }

    /// The centered base-change kernel matches the `i128` centered lift it
    /// replaced, bit for bit, including values straddling `src_q / 2`.
    #[test]
    fn centered_reduce_matches_i128_lift(len in 1usize..70, bits_off in 0u32..32, seed in 0u64..1_000_000) {
        use rand::SeedableRng;
        let src_q = random_prime(16, bits_off, seed);
        let dst_q = random_prime(16, (bits_off + 7) % 32, seed ^ 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xce17);
        let mut src = fill(&mut rng, len, src_q);
        // Force boundary coverage around the centering threshold.
        if len > 2 {
            src[0] = src_q / 2;
            src[1] = src_q / 2 + 1;
            src[2] = src_q - 1;
        }
        let expect: Vec<u64> = src
            .iter()
            .map(|&x| {
                let c = if x > src_q / 2 { x as i128 - src_q as i128 } else { x as i128 };
                reduce_i128(c, dst_q)
            })
            .collect();
        for k in simd::variants() {
            let mut v = vec![0u64; len];
            (k.centered_reduce)(&mut v, &src, src_q, dst_q);
            prop_assert_eq!(&v, &expect, "{} centered_reduce", k.name);
        }
    }

    /// The fused key-switch accumulator equals the strict per-digit
    /// multiply-accumulate for any digit count, including digit counts
    /// large enough to exercise the lazy-accumulator reduction sweeps.
    #[test]
    fn ks_accum_matches_strict_inner_product(
        len in 1usize..70,
        digits in 1usize..9,
        bits_off in 0u32..32,
        seed in 0u64..1_000_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = random_prime(16, bits_off, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5);
        let acc0 = fill(&mut rng, len, q);
        let ds: Vec<Vec<u64>> = (0..digits).map(|_| fill(&mut rng, len, q)).collect();
        let ks: Vec<Vec<u64>> = (0..digits).map(|_| fill(&mut rng, len, q)).collect();
        let kss: Vec<Vec<u64>> = ks
            .iter()
            .map(|kv| kv.iter().map(|&x| shoup_precompute(x, q)).collect())
            .collect();
        let mut expect = acc0.clone();
        for d in 0..digits {
            for i in 0..len {
                expect[i] = add_mod(expect[i], mul_mod(ds[d][i], ks[d][i], q), q);
            }
        }
        let dsl: Vec<&[u64]> = ds.iter().map(|v| v.as_slice()).collect();
        let ksl: Vec<&[u64]> = ks.iter().map(|v| v.as_slice()).collect();
        let kssl: Vec<&[u64]> = kss.iter().map(|v| v.as_slice()).collect();
        for k in simd::variants() {
            let mut v = acc0.clone();
            (k.ks_accum)(&mut v, &dsl, &ksl, &kssl, q);
            prop_assert_eq!(&v, &expect, "{} ks_accum", k.name);
        }
    }
}
