//! Quick per-kernel SIMD-vs-scalar timing table (dev aid, not a gate).
//!
//! Run with `cargo run --release -p orion-math --example simd_timing`.

use orion_math::modular::shoup_precompute;
use orion_math::ntt::NttTable;
use orion_math::primes::generate_ntt_primes;
use orion_math::simd;
use std::hint::black_box;
use std::time::Instant;

fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up, then take the best of 7 timed batches.
    for _ in 0..3 {
        f();
    }
    let mut best = f64::MAX;
    for _ in 0..7 {
        let iters = 40;
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn main() {
    let n = 8192;
    let q = generate_ntt_primes(n, 59, 1, &[])[0];
    let t = NttTable::new(n, q);
    t.inverse(&mut vec![0u64; n]);
    let mut x = 1u64;
    let data: Vec<u64> = (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x % q
        })
        .collect();
    let other: Vec<u64> = data.iter().map(|&v| (v * 7 + 13) % q).collect();
    let shoup: Vec<u64> = other.iter().map(|&v| shoup_precompute(v, q)).collect();
    let s = data[17];
    let s_sh = shoup_precompute(s, q);
    let mut buf = data.clone();
    let mut out = vec![0u64; n];
    println!("n={n} q={q} ({} bits)", 64 - q.leading_zeros());
    for k in simd::variants() {
        let fwd = time_ns(|| {
            buf.copy_from_slice(&data);
            t.forward_lazy_with(k, &mut buf);
            black_box(buf[0]);
        });
        let inv = time_ns(|| {
            buf.copy_from_slice(&data);
            t.inverse_lazy_with(k, &mut buf);
            black_box(buf[0]);
        });
        let mul = time_ns(|| {
            (k.mul_pointwise)(&mut out, &data, &other, q);
            black_box(out[0]);
        });
        let mac = time_ns(|| {
            (k.add_mul)(&mut out, &data, &other, q);
            black_box(out[0]);
        });
        let add = time_ns(|| {
            (k.add_assign)(&mut buf, &data, q);
            black_box(buf[0]);
        });
        let smul = time_ns(|| {
            (k.scalar_mul_assign)(&mut buf, s, s_sh, q);
            black_box(buf[0]);
        });
        let mred = time_ns(|| {
            (k.mod_reduce)(&mut out, &data, q);
            black_box(out[0]);
        });
        let cred = time_ns(|| {
            (k.centered_reduce)(&mut out, &data, q, q - 2 * n as u64);
            black_box(out[0]);
        });
        let digit_refs: Vec<&[u64]> = (0..3).map(|_| data.as_slice()).collect();
        let key_refs: Vec<&[u64]> = (0..3).map(|_| other.as_slice()).collect();
        let shoup_refs: Vec<&[u64]> = (0..3).map(|_| shoup.as_slice()).collect();
        let ks = time_ns(|| {
            buf.copy_from_slice(&data);
            (k.ks_accum)(&mut buf, &digit_refs, &key_refs, &shoup_refs, q);
            black_box(buf[0]);
        });
        println!(
            "{:>7}: fwd {fwd:9.0}  inv {inv:9.0}  mul {mul:8.0}  mac {mac:8.0}  add {add:8.0}  \
             smul {smul:8.0}  mred {mred:8.0}  cred {cred:8.0}  ks3 {ks:8.0}  (ns)",
            k.name
        );
    }
}
