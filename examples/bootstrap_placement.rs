//! Automatic bootstrap placement, visualized (paper §5, Figure 6).
//!
//! Builds the paper's example networks as level digraph problems, solves
//! them, and prints the level-management policy — then contrasts the
//! shortest-path solution with the lazy baseline on a residual network.
//!
//! ```sh
//! cargo run --release --example bootstrap_placement
//! ```

use orion::graph::ir::{Graph, Node, NodeKind};
use orion::graph::{place, place_lazy};

fn flat(l_eff: usize, v: f64) -> Vec<f64> {
    vec![v; l_eff + 1]
}

fn print_policy(g: &Graph, r: &orion::graph::PlacementResult) {
    for (id, node) in g.nodes.iter().enumerate() {
        let boot = if r.boots_before[id] > 0 {
            "  ← bootstrap before"
        } else {
            ""
        };
        match r.levels[id] {
            Some(l) => println!("    {:<10} @ level {l}{boot}", node.name),
            None => println!("    {:<10} (no compute)", node.name),
        }
    }
    println!(
        "    total: {} bootstraps, modeled latency {:.2}s",
        r.boot_count, r.total_latency
    );
}

fn main() {
    // ---- Figure 6a/b: three fully-connected layers, L_eff = 3 ----------
    let l_eff = 3;
    let mut g = Graph::new();
    let input = g.add_node(Node::new("input", NodeKind::Input, 0, flat(l_eff, 0.0), 1));
    let mut prev = input;
    for name in ["fc1", "fc2", "fc3"] {
        let lat: Vec<f64> = (0..=l_eff).map(|l| 0.1 * (l + 1) as f64).collect();
        let id = g.add_node(Node::new(name, NodeKind::Linear, 1, lat, 1));
        g.add_edge(prev, id);
        prev = id;
    }
    let out = g.add_node(Node::new(
        "output",
        NodeKind::Output,
        0,
        flat(l_eff, 0.0),
        1,
    ));
    g.add_edge(prev, out);
    println!("Figure 6a: fc1→fc2→fc3 with L_eff = 3 (paper: zero bootstraps needed)");
    print_policy(&g, &place(&g, l_eff, 10.0));

    // ---- Figure 6c: a residual region forcing a bootstrap --------------
    let mut g = Graph::new();
    let input = g.add_node(Node::new("input", NodeKind::Input, 0, flat(l_eff, 0.0), 1));
    let fc1 = g.add_node(Node::new("fc1", NodeKind::Linear, 1, flat(l_eff, 0.1), 1));
    let act = g.add_node(Node::new(
        "ax^2",
        NodeKind::Activation,
        2,
        flat(l_eff, 0.3),
        1,
    ));
    let fc2 = g.add_node(Node::new("fc2", NodeKind::Linear, 1, flat(l_eff, 0.1), 1));
    let add = g.add_node(Node::new("+", NodeKind::Add, 0, flat(l_eff, 0.01), 2));
    let out = g.add_node(Node::new(
        "output",
        NodeKind::Output,
        0,
        flat(l_eff, 0.0),
        1,
    ));
    g.add_edge(input, fc1);
    g.add_edge(fc1, act);
    g.add_edge(act, fc2);
    g.add_edge(fc1, add);
    g.add_edge(fc2, add);
    g.add_edge(add, out);
    println!("\nFigure 6c: residual region, total depth 4 > L_eff = 3 (paper: ≥1 bootstrap)");
    print_policy(&g, &place(&g, l_eff, 10.0));

    // ---- Shortest-path vs lazy on a deeper residual chain --------------
    let l_eff = 6;
    let mut g = Graph::new();
    let input = g.add_node(Node::new("input", NodeKind::Input, 0, flat(l_eff, 0.0), 1));
    let mut prev = input;
    for i in 0..6 {
        let conv1 = g.add_node(Node::new(
            format!("b{i}.conv1"),
            NodeKind::Linear,
            1,
            (0..=l_eff).map(|l| 0.2 * (l + 1) as f64).collect(),
            1,
        ));
        let act = g.add_node(Node::new(
            format!("b{i}.act"),
            NodeKind::Activation,
            5,
            (0..=l_eff).map(|l| 0.8 * (l + 1) as f64).collect(),
            1,
        ));
        let conv2 = g.add_node(Node::new(
            format!("b{i}.conv2"),
            NodeKind::Linear,
            1,
            (0..=l_eff).map(|l| 0.2 * (l + 1) as f64).collect(),
            1,
        ));
        let add = g.add_node(Node::new(
            format!("b{i}.add"),
            NodeKind::Add,
            0,
            flat(l_eff, 0.01),
            2,
        ));
        g.add_edge(prev, conv1);
        g.add_edge(conv1, act);
        g.add_edge(act, conv2);
        g.add_edge(conv2, add);
        g.add_edge(prev, add);
        prev = add;
    }
    let out = g.add_node(Node::new(
        "output",
        NodeKind::Output,
        0,
        flat(l_eff, 0.0),
        1,
    ));
    g.add_edge(prev, out);

    let opt = place(&g, l_eff, 11.0);
    let lazy = place_lazy(&g, l_eff, 11.0);
    println!("\n6-block residual network, L_eff = 6:");
    println!(
        "  shortest-path: {} boots, latency {:.1}s (placement {:.2} ms)",
        opt.boot_count,
        opt.total_latency,
        opt.placement_seconds * 1e3
    );
    println!(
        "  lazy baseline: {} boots, latency {:.1}s",
        lazy.boot_count, lazy.total_latency
    );
    assert!(opt.total_latency <= lazy.total_latency + 1e-9);
    println!("  → the level digraph solution is never slower, and runs layers at");
    println!("    cheaper (lower) levels when bootstrapping is worth it (paper §5.1).");
}
