//! The human entry point to the static plan verifier: compiles a model
//! from the zoo and prints its certification — a diagnostic table when
//! anything fires, "certified clean" otherwise. Exits nonzero on any
//! error-severity diagnostic, so it doubles as a CI gate.
//!
//! ```sh
//! cargo run --release --example verify_model -- resnet20
//! cargo run --release --example verify_model -- mlp medium
//! ```
//!
//! The first argument is a zoo model name (`mlp`, `lenet5`, `resnet20`,
//! …; default `resnet20`). The second selects parameters: `paper`
//! (default — N = 2¹⁶ planning scale, structural passes only) or
//! `tiny`/`medium` (concrete CKKS parameters; the noise-budget pass joins
//! in under the matching `Context`).

use orion::ckks::{CkksParams, Context};
use orion::models::data::synthetic_images;
use orion::models::{build, Act};
use orion::nn::compile::{compile, CompileOptions};
use orion::nn::fit::fit_robust;
use orion::nn::verify::{verify_compiled, VerifyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = args.get(1).map(String::as_str).unwrap_or("resnet20");
    let preset = args.get(2).map(String::as_str).unwrap_or("paper");

    let mut rng = StdRng::seed_from_u64(0x7e11);
    let (net, info) = build(model, Act::SiluDeg(63), &mut rng);
    let (c, h, w) = info.input;
    let calib = synthetic_images(c, h, w, 2, 0x5eed);

    let (opts, ctx) = match preset {
        "paper" => (CompileOptions::paper(), None),
        "tiny" => {
            let p = CkksParams::tiny();
            (CompileOptions::from_params(&p), Some(Context::new(p)))
        }
        "medium" => {
            let p = CkksParams::medium();
            (CompileOptions::from_params(&p), Some(Context::new(p)))
        }
        other => {
            eprintln!("unknown parameter preset {other:?} (expected paper|tiny|medium)");
            std::process::exit(2);
        }
    };

    // Compile directly (not through `Orion::compile`, which would panic on
    // an unverifiable program — this tool's job is to *show* the table).
    let fitres = fit_robust(&net, &calib, 4);
    let compiled = compile(&net, &fitres, &opts);

    let cfg = match &ctx {
        Some(ctx) => VerifyConfig::with_ctx(ctx),
        None => VerifyConfig::default(),
    };
    let report = verify_compiled(&compiled, &cfg);

    println!(
        "{model} ({}, {} steps, {} rotations, {} bootstraps) under {preset} parameters:",
        info.dataset,
        compiled.prog.len(),
        compiled.planned_rotations(),
        compiled.placement.boot_count,
    );
    if report.is_clean() {
        println!("certified clean — {}", report.summary());
    } else {
        println!("{}", report.table());
        for (rule, n) in report.counts_by_rule() {
            println!("  {rule}: {n}");
        }
    }
    if report.has_errors() {
        std::process::exit(1);
    }
}
