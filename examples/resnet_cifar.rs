//! ResNet-20 on CIFAR-10-sized inputs: the paper's headline benchmark,
//! compiled at deployment scale and executed on the trace backend
//! (identical plans/placement to the real backend; see DESIGN.md).
//!
//! Also demonstrates the ReLU-vs-SiLU latency/accuracy trade-off (§8.2).
//!
//! ```sh
//! cargo run --release --example resnet_cifar
//! ```

use orion::core::{trace_inference, Orion};
use orion::models::data::synthetic_images;
use orion::models::{build, Act};
use orion::nn::fit::calibrate_batch_norm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(act: Act, label: &str) {
    let mut rng = StdRng::seed_from_u64(11);
    let (mut net, info) = build("resnet20", act, &mut rng);
    let calib = synthetic_images(3, 32, 32, 8, 12);
    calibrate_batch_norm(&mut net, &calib);
    let orion = Orion::paper_scale();
    let compiled = orion.compile(&net, &calib);
    let input = &synthetic_images(3, 32, 32, 1, 13)[0];
    let run = trace_inference(&compiled, input);
    let exact = net.forward_exact(input);
    println!("\nResNet-20 / {label}:");
    println!(
        "  params {:.2}M, FLOPs {:.0}M",
        info.params as f64 / 1e6,
        info.flops as f64 / 1e6
    );
    println!("  rotations        {}", run.counter.rotations());
    println!("  activation depth {}", compiled.activation_depth());
    println!("  bootstraps       {}", run.counter.bootstraps());
    println!(
        "  precision        {:.1} bits vs cleartext",
        run.precision_vs(&exact)
    );
    println!(
        "  modeled latency  {:.0} s single-threaded (paper {}: {})",
        run.counter.seconds,
        label,
        if matches!(act, Act::Relu) {
            "618 s"
        } else {
            "301 s"
        }
    );
    println!(
        "  placement took   {:.2} s (paper: 1.94 s)",
        compiled.placement.placement_seconds
    );
}

fn main() {
    println!("ResNet-20 under Orion at paper scale (N = 2^16 cost model, L_eff = 10)");
    run(Act::Relu, "ReLU [15,15,27]");
    run(Act::SiluDeg(63), "SiLU-63");
    println!("\nexpected shape (paper §8.2): SiLU roughly halves activation depth,");
    println!("cuts bootstraps ~2x, and speeds the network up 1.5–2x.");
}
