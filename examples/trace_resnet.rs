//! Trace one ResNet-style forked inference with the telemetry collector
//! enabled: every scheduler unit becomes a span, wire level/scale
//! trajectories become instants, and the run's critical path is computed
//! from the measured per-unit durations.
//!
//! Writes `target/trace_resnet.json` — open it at <https://ui.perfetto.dev>
//! (or `chrome://tracing`) to see the per-thread span tracks — and prints
//! the top-10 critical-path units as a table.
//!
//! ```sh
//! cargo run --release --example trace_resnet
//! ```

use orion::nn::backend::run_program_mode;
use orion::nn::backends::PlainBackend;
use orion::nn::compile::{compile, CompileOptions};
use orion::nn::fit::fixed_ranges;
use orion::nn::network::Network;
use orion::nn::sched::SchedMode;
use orion::sim::CostModel;
use orion::telemetry;
use orion::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Widen the shared pool before its first use so the parallel walk has
    // real threads even on a small runner.
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }

    // A small ResNet-style net: conv stem, two residual blocks (each a
    // conv→ReLU→conv fork rejoined by an add), square activations.
    let mut rng = StdRng::seed_from_u64(0x2e5);
    let mut net = Network::new(4, 8, 8);
    let x = net.input();
    let stem = net.conv2d("stem", x, 4, 3, 1, 1, 1, &mut rng);
    let mut h = net.square("stem_act", stem);
    for b in 0..2 {
        let c1 = net.conv2d(&format!("b{b}_conv1"), h, 4, 3, 1, 1, 1, &mut rng);
        let a1 = net.relu(&format!("b{b}_relu"), c1, &[15, 15, 27]);
        let c2 = net.conv2d(&format!("b{b}_conv2"), a1, 4, 3, 1, 1, 1, &mut rng);
        let sum = net.add(&format!("b{b}_res"), c2, h);
        h = net.square(&format!("b{b}_act"), sum);
    }
    let f = net.flatten("flat", h);
    let logits = net.linear("fc", f, 10, &mut rng);
    net.output(logits);

    let opts = CompileOptions {
        slots: 128,
        l_eff: 10,
        cost: CostModel::for_degree(1 << 9, 4),
    };
    let compiled = compile(&net, &fixed_ranges(&net, 4.0), &opts);
    let input = Tensor::from_vec(
        &[4, 8, 8],
        (0..4 * 8 * 8).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    );

    telemetry::enable();
    let backend = PlainBackend::new(&compiled);
    let run = run_program_mode(&compiled, &backend, &input, SchedMode::Parallel);
    telemetry::disable();

    let events = telemetry::drain();
    let json = telemetry::trace::chrome_trace_json(&events);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/trace_resnet.json", &json).expect("write trace");
    println!(
        "traced inference: {} output values, {} events",
        run.output.data().len(),
        events.len()
    );
    println!("wrote target/trace_resnet.json — load it at https://ui.perfetto.dev");

    let report = telemetry::last_run().expect("an enabled run records a report");
    println!(
        "\nrun: mode={} threads={} units={} wall={:.2} ms busy={:.2} ms (parallelism {:.2}x)",
        report.mode,
        report.threads,
        report.units,
        report.wall_ns as f64 / 1e6,
        report.busy_ns as f64 / 1e6,
        report.busy_ns as f64 / report.wall_ns.max(1) as f64,
    );
    println!(
        "critical path: {:.2} ms ({:.0}% of wall)\n",
        report.critical_path_ns as f64 / 1e6,
        100.0 * report.critical_path_ns as f64 / report.wall_ns.max(1) as f64,
    );
    println!(
        "{:<6} {:<24} {:>10} {:>10}",
        "unit", "label", "exec ms", "queue ms"
    );
    for u in report.top.iter().take(10) {
        println!(
            "{:<6} {:<24} {:>10.3} {:>10.3}",
            u.unit,
            u.label,
            u.dur_ns as f64 / 1e6,
            u.queue_ns as f64 / 1e6,
        );
    }
}
