//! The paper's MNIST MLP benchmark, end to end on REAL FHE:
//! train a square-activation MLP with pure-Rust SGD on a synthetic digits
//! task, compile it with Orion, run encrypted inference, and show that
//! FHE accuracy matches cleartext accuracy (Table 2's "Clear Acc." vs
//! "FHE Acc." validation).
//!
//! ```sh
//! cargo run --release --example mnist_mlp
//! ```

use orion::ckks::CkksParams;
use orion::core::{fhe_inference, fhe_inference_prepared, fhe_session, Orion};
use orion::models::data::synthetic_digits;
use orion::models::train::{accuracy_of_outputs, train_mlp, TrainConfig};

fn main() {
    // 1. Synthetic digits (this repo ships no MNIST download; the task is
    //    learnable and the validation methodology is the paper's). One
    //    generator call, split into train/test.
    let all = synthetic_digits(8, 8, 4, 136, 42);
    let split = 120;
    let train = orion::models::data::Digits {
        images: all.images[..split].to_vec(),
        labels: all.labels[..split].to_vec(),
        classes: all.classes,
    };
    let test = orion::models::data::Digits {
        images: all.images[split..].to_vec(),
        labels: all.labels[split..].to_vec(),
        classes: all.classes,
    };

    // 2. Train in the clear (pure-Rust SGD).
    println!("training a 64-32-32-4 square-activation MLP…");
    let (net, train_acc) = train_mlp(&train, TrainConfig::default());
    println!("  training accuracy: {:.1}%", train_acc * 100.0);
    let clear_correct = test
        .images
        .iter()
        .zip(&test.labels)
        .filter(|(img, &l)| net.forward_exact(img).argmax() == l)
        .count();
    println!(
        "  cleartext test accuracy: {}/{}",
        clear_correct,
        test.images.len()
    );

    // 3. Compile for FHE and create a session (keys, oracle).
    let params = CkksParams::medium(); // N = 2^13, Δ = 2^40 (demo scale)
    let orion = Orion::for_params(&params);
    let compiled = orion.compile(&net, &train.images[..8]);
    println!(
        "\ncompiled: {} rotations planned, {} bootstraps placed, act depth {}",
        compiled.planned_rotations(),
        compiled.placement.boot_count,
        compiled.activation_depth()
    );
    let session = fhe_session(params, &compiled, 7);

    // 4. Prepare once (the serving split: weight diagonals become offline
    //    artifacts), then serve the whole test set from the shared cache
    //    with zero per-request encodes.
    let t0 = std::time::Instant::now();
    let prepared = orion.prepare_fhe(&compiled, &session);
    println!(
        "\nprepared {} weight plaintexts across {} linear layers in {:.2} s",
        prepared.num_plaintexts(),
        prepared.len(),
        t0.elapsed().as_secs_f64()
    );

    // 5. Encrypted inference over the test set (first one also measured
    //    cold for comparison).
    println!("running {} encrypted inferences…", test.images.len());
    let cold = fhe_inference(&compiled, &session, &test.images[0]);
    let mut outputs = Vec::new();
    let mut total_secs = 0.0;
    let mut precisions = Vec::new();
    for img in &test.images {
        let run = fhe_inference_prepared(&compiled, &session, &prepared, img);
        total_secs += run.wall_seconds;
        precisions.push(run.precision_vs(&net.forward_exact(img)));
        outputs.push(run.output);
    }
    let fhe_acc = accuracy_of_outputs(&outputs, &test);
    let mean_prec = precisions.iter().sum::<f64>() / precisions.len() as f64;
    println!(
        "  FHE test accuracy:       {}/{}",
        (fhe_acc * test.images.len() as f64).round() as usize,
        test.images.len()
    );
    println!("  mean output precision:   {mean_prec:.1} bits");
    println!(
        "  served latency:          {:.2} s/inference (on-the-fly: {:.2} s)",
        total_secs / test.images.len() as f64,
        cold.wall_seconds
    );
    println!("\nFHE and cleartext classification agree — the paper's validation result.");
    assert!(fhe_acc * test.images.len() as f64 >= clear_correct as f64 - 1.0);
}
