//! Arbitrary activation functions (paper §6): "Orion is able to support
//! arbitrary activation functions that can be fit with high-degree
//! polynomials" — here GELU, fit with Chebyshev interpolation and run on
//! REAL CKKS next to its cleartext reference.
//!
//! ```sh
//! cargo run --release --example custom_activation
//! ```

use orion::ckks::CkksParams;
use orion::core::{fhe_inference, fhe_session, Orion};
use orion::models::data::synthetic_images;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GELU (tanh approximation, as used by transformer stacks).
fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + ((2.0 / std::f64::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
}

fn main() {
    let params = CkksParams {
        max_level: 10,
        boot_levels: 2,
        ..CkksParams::tiny()
    };
    let mut rng = StdRng::seed_from_u64(9);

    // A small conv net with a GELU activation — one extra builder call is
    // all a new activation needs (the paper's extensibility claim).
    let mut net = orion::nn::Network::new(1, 8, 8);
    let x = net.input();
    let c1 = net.conv2d("conv1", x, 4, 3, 1, 1, 1, &mut rng);
    let g = net.activation("gelu1", c1, 31, gelu);
    let f = net.flatten("flat", g);
    let l = net.linear("fc", f, 4, &mut rng);
    net.output(l);

    let calib = synthetic_images(1, 8, 8, 6, 10);
    let orion = Orion::for_params(&params);
    let compiled = orion.compile(&net, &calib);
    println!(
        "compiled: GELU fit as a degree-31 Chebyshev over the fitted range, depth {}",
        compiled.activation_depth()
    );

    let session = fhe_session(params, &compiled, 11);
    let input = &synthetic_images(1, 8, 8, 1, 12)[0];
    let run = fhe_inference(&compiled, &session, input);
    let exact = net.forward_exact(input);
    println!(
        "encrypted output:  {:?}",
        run.output
            .data()
            .iter()
            .map(|x| (x * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
    println!(
        "cleartext output:  {:?}",
        exact
            .data()
            .iter()
            .map(|x| (x * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
    println!(
        "precision: {:.1} bits, {} bootstraps, {:.2}s wall",
        run.precision_vs(&exact),
        run.bootstraps,
        run.wall_seconds
    );
    assert!(run.precision_vs(&exact) > 5.0);
}
