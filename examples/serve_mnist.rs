//! Multi-tenant serving end to end: two MNIST-shaped MLPs hosted side by
//! side, three clients with their own keys submitting encrypted requests
//! concurrently, batches flowing through the admission queue onto the
//! worker pool — one model paged under a memory cap smaller than its
//! encoded-weight footprint, the other fully resident.
//!
//! Run with `cargo run --release --example serve_mnist`.

use orion_core::serve::{ServeConfig, Server};
use orion_core::Orion;
use orion_models::data::synthetic_images;
use orion_nn::fhe_exec::FheSession;
use orion_nn::network::Network;
use orion_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Insecure demo parameters (N = 2¹¹) with enough level headroom that both
/// nets run bootstrap-free, keeping served requests fully deterministic.
fn demo_params(max_level: usize) -> orion_ckks::CkksParams {
    orion_ckks::CkksParams {
        n: 1 << 11,
        log_scale: 30,
        q0_bits: 45,
        max_level,
        special_bits: 45,
        sigma: 3.2,
        boot_levels: 1,
    }
}

/// A 14×14 ("downsampled MNIST") MLP with the exact x² activation.
fn mlp_square(rng: &mut StdRng) -> (Network, orion_ckks::CkksParams) {
    let mut net = Network::new(1, 14, 14);
    let x = net.input();
    let f = net.flatten("flat", x);
    let l1 = net.linear("fc1", f, 32, rng);
    let a = net.square("act", l1);
    let l2 = net.linear("fc2", a, 10, rng);
    net.output(l2);
    (net, demo_params(6))
}

/// The same shape with a degree-3 SiLU (a real Chebyshev poly stage, so
/// this tenant exercises the cached activation constants).
fn mlp_silu(rng: &mut StdRng) -> (Network, orion_ckks::CkksParams) {
    let mut net = Network::new(1, 14, 14);
    let x = net.input();
    let f = net.flatten("flat", x);
    let l1 = net.linear("fc1", f, 32, rng);
    let a = net.silu("act", l1, 3);
    let l2 = net.linear("fc2", a, 10, rng);
    net.output(l2);
    (net, demo_params(9))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5e11e);
    let calib = synthetic_images(1, 14, 14, 4, 1);

    let mut server = Server::new(ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        workers: 2,
        queue_capacity: 64,
    });

    // Tenant 0: paged under a cap ~2/3 of its encoded-weight footprint.
    let (net_a, params_a) = mlp_square(&mut rng);
    let compiled_a = Orion::for_params(&params_a).compile(&net_a, &calib);
    let footprint = {
        let prep = FheSession::new(params_a.clone(), &compiled_a, 1);
        prep.prepare(&compiled_a).approx_bytes()
    };
    let store_dir = std::env::temp_dir().join("orion_serve_mnist_store");
    std::fs::remove_dir_all(&store_dir).ok();
    let model_a = server
        .add_model_paged(
            "mnist-square",
            compiled_a,
            params_a,
            2,
            &store_dir,
            footprint * 2 / 3,
        )
        .expect("register paged model");
    println!(
        "mnist-square: paged, footprint {footprint} B, budget {} B",
        footprint * 2 / 3
    );

    // Tenant 1: fully resident.
    let (net_b, params_b) = mlp_silu(&mut rng);
    let compiled_b = Orion::for_params(&params_b).compile(&net_b, &calib);
    let model_b = server
        .add_model("mnist-silu", compiled_b, params_b, 3)
        .expect("model verifies");
    println!("mnist-silu: resident");

    // Three clients, each with its own keys (two tenants share model A's
    // paged weight set — encodings are key-independent).
    let clients = [
        server.add_client(model_a, 10).unwrap(),
        server.add_client(model_a, 11).unwrap(),
        server.add_client(model_b, 12).unwrap(),
    ];

    server.start();

    std::thread::scope(|scope| {
        for (tid, &client) in clients.iter().enumerate() {
            let server = &server;
            scope.spawn(move || {
                let images = synthetic_images(1, 14, 14, 4, 100 + tid as u64);
                for (i, img) in images.iter().enumerate() {
                    let cts = server.encrypt(client, img).expect("encrypt");
                    let out = server.infer(client, cts).expect("serve");
                    let class = argmax(&out.output);
                    println!(
                        "client {tid} req {i}: class {class}, queue {:.1} ms, \
                         exec {:.1} ms, batch x{}, encodes {}",
                        out.queue_seconds * 1e3,
                        out.wall_seconds * 1e3,
                        out.batch_size,
                        out.counter.encodes,
                    );
                }
            });
        }
    });

    println!(
        "\npage stats (mnist-square): {:?}",
        server.page_stats(model_a)
    );
    println!("\nmetrics snapshot:\n{}", server.metrics_json());
    server.shutdown();
    std::fs::remove_dir_all(&store_dir).ok();
}

fn argmax(t: &Tensor) -> usize {
    t.data()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}
