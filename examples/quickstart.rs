//! Quickstart: raw CKKS operations, then a one-layer encrypted network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use orion::ckks::keys::KeyGenerator;
use orion::ckks::{CkksParams, Context, Decryptor, Encoder, Encryptor, Evaluator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. Parameters and keys. `small()` is a fast demo set (N = 2^12) —
    //    see CkksParams::secure_n16() for deployment-scale parameters.
    let params = CkksParams::small();
    let ctx = Context::new(params);
    println!(
        "CKKS context: N = {}, {} slots, L = {}",
        ctx.degree(),
        ctx.slots(),
        ctx.max_level()
    );

    let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(1));
    let pk = Arc::new(kg.gen_public_key());
    let keys = Arc::new(kg.gen_eval_keys(&[1, 4]));
    let sk = kg.secret_key();

    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::with_public_key(ctx.clone(), pk);
    let dec = Decryptor::new(ctx.clone(), sk);
    let eval = Evaluator::new(ctx.clone(), keys);
    let mut rng = StdRng::seed_from_u64(2);

    // 2. Encrypt a vector.
    let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.25).collect();
    let ct = encryptor.encrypt(&enc.encode(&xs, ctx.scale(), 3, false), &mut rng);
    println!("\nencrypted {:?}…  ({} bytes)", &xs[..4], ct.size_bytes());

    // 3. SIMD add, multiply (errorless weight encoding!), rotate.
    let sum = eval.add(&ct, &ct);
    let weights = enc.encode_at_prime_scale(&vec![0.5; ctx.slots()], 3, false);
    let mut halved = eval.mul_plain(&ct, &weights);
    eval.rescale_assign(&mut halved);
    assert_eq!(halved.scale, ctx.scale(), "scale returned exactly to Δ");
    let rotated = eval.rotate(&ct, 1);

    let show = |name: &str, ct: &orion::ckks::Ciphertext| {
        let out = enc.decode(&dec.decrypt(ct));
        println!(
            "{name:>10}: [{:.3}, {:.3}, {:.3}, {:.3}, …] at level {}",
            out[0],
            out[1],
            out[2],
            out[3],
            ct.level()
        );
    };
    show("x", &ct);
    show("x + x", &sum);
    show("x / 2", &halved);
    show("rot(x,1)", &rotated);

    // 4. A packed matrix–vector product through the Orion engine: a 3×3
    //    convolution in ONE multiplicative level (paper §4).
    use orion::linear::exec::{exec_fhe, FheLinearContext};
    use orion::linear::plan::{conv_plan, ConvSpec};
    use orion::linear::values::ConvDiagSource;
    use orion::linear::TensorLayout;
    use orion::tensor::Tensor;

    let in_l = TensorLayout::raster(1, 8, 8);
    let spec = ConvSpec {
        co: 1,
        ci: 1,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        dilation: 1,
        groups: 1,
    };
    let (plan, out_l) = conv_plan(&in_l, &spec, ctx.slots());
    println!(
        "\n3x3 same conv plan: {} diagonals, {} rotations (BSGS n1 = {})",
        plan.counts.pmults,
        plan.counts.rotations(),
        plan.n1
    );

    let mut kg = KeyGenerator::new(ctx.clone(), StdRng::seed_from_u64(3));
    let pk = Arc::new(kg.gen_public_key());
    let keys = Arc::new(kg.gen_eval_keys(&plan.rotation_steps()));
    let sk = kg.secret_key();
    let encryptor = Encryptor::with_public_key(ctx.clone(), pk);
    let dec = Decryptor::new(ctx.clone(), sk);
    let eval = Evaluator::new(ctx.clone(), keys);

    let image: Vec<f64> = (0..64).map(|i| ((i % 9) as f64 - 4.0) * 0.1).collect();
    let weights = Tensor::from_vec(
        &[1, 1, 3, 3],
        vec![0.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 0.0],
    ); // Laplacian
    let src = ConvDiagSource {
        in_l,
        out_l,
        spec,
        weights: &weights,
    };
    let ct = encryptor.encrypt(
        &enc.encode(&in_l.pack(&image), ctx.scale(), 3, false),
        &mut rng,
    );
    let fctx = FheLinearContext {
        eval: &eval,
        enc: &enc,
    };
    let out = exec_fhe(&fctx, &plan, &src, None, &[ct]);
    let decoded = enc.decode(&dec.decrypt(&out[0]));
    println!(
        "encrypted Laplacian of the image, first row: {:?}",
        decoded[..4]
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "output level {} (input was 3 — exactly one level consumed)",
        out[0].level()
    );
}
